"""QSM-on-BSP emulation costs (the [19] companion results).

The paper's introduction leans on a theoretical result: "algorithms
designed on the QSM should perform just as well on the BSP (to within a
small constant factor) provided the input size is sufficiently large"
(Gibbons–Matias–Ramachandran; Ramachandran–Grayson–Dahlin TR98-22).
This module implements the cost side of that emulation so the claim can
be checked numerically against this reproduction's measured phase logs:

* a QSM phase with per-processor work ``m_op``, remote traffic ``m_rw``
  and contention ``kappa`` is emulated on a ``p'``-processor BSP whose
  shared memory is *hashed* across the processors;
* each of the ``p`` QSM processors' work lands on some BSP processor
  (``p/p'`` QSM processors per BSP processor);
* hashing turns the remote accesses into an h-relation of expected size
  ``(p/p')·m_rw + kappa`` up to a whp ballast factor for hash imbalance;
* every phase pays one BSP superstep's ``L``.

The emulation is *work-preserving* (constant-factor efficient) exactly
when the phase is large enough that ``L`` and the hash ballast are
lower-order — which is the "input size sufficiently large" proviso that
Section 3 then tests experimentally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.core.models import PhaseWork
from repro.core.params import BSPParams
from repro.util.validation import check_positive


@dataclass(frozen=True)
class EmulationParams:
    """Knobs of the QSM→BSP emulation.

    ``ballast`` is the whp multiplicative slack on the h-relation from
    hash-bucket imbalance (the analysis gives a constant ~2 for
    superlogarithmic phase sizes); ``p`` is the emulated QSM's
    processor count, ``p_prime`` the emulating BSP's.
    """

    p: int
    p_prime: int
    ballast: float = 2.0

    def __post_init__(self) -> None:
        check_positive("p", self.p)
        check_positive("p_prime", self.p_prime)
        if self.p_prime > self.p:
            raise ValueError(
                f"emulation needs p' <= p (got p'={self.p_prime} > p={self.p})"
            )
        if self.ballast < 1.0:
            raise ValueError(f"ballast must be >= 1, got {self.ballast}")

    @property
    def slack(self) -> float:
        """QSM processors emulated per BSP processor (the parallel slack)."""
        return self.p / self.p_prime


def qsm_phase_on_bsp(work: PhaseWork, bsp: BSPParams, emu: EmulationParams) -> float:
    """BSP superstep time to emulate one QSM phase.

    ``w + g·h + L`` with ``w = slack·m_op`` and
    ``h = ballast·(slack·m_rw + kappa)``.
    """
    w = emu.slack * work.m_op
    h = emu.ballast * (emu.slack * work.m_rw + work.kappa)
    return w + bsp.g * h + bsp.L


def qsm_program_on_bsp(
    phases: Iterable[PhaseWork], bsp: BSPParams, emu: EmulationParams
) -> float:
    """Total BSP time to emulate a QSM program phase by phase."""
    return sum(qsm_phase_on_bsp(w, bsp, emu) for w in phases)


def emulation_slowdown(
    phases: List[PhaseWork], bsp: BSPParams, emu: EmulationParams
) -> float:
    """Emulated time over the ideal rescaled cost (1.0 = work-preserving).

    The ideal is the QSM program's own cost under the same ``g``, spread
    over the p' BSP processors (``slack``-scaled), with no L and no
    ballast.  The theorem says this ratio is O(1) once phases are large;
    it blows up when ``L`` dominates tiny phases.
    """
    if not phases:
        raise ValueError("need at least one phase")
    ideal = sum(
        emu.slack * max(w.m_op, bsp.g * w.m_rw, w.kappa) for w in phases
    )
    if ideal <= 0:
        return math.inf
    return qsm_program_on_bsp(phases, bsp, emu) / ideal


def work_preserving_threshold(bsp: BSPParams, emu: EmulationParams, factor: float = 3.0) -> float:
    """Minimum per-phase QSM cost for the emulation to stay within
    *factor* of ideal.

    From ``slack·C·factor >= slack·C·ballast + L``: once each phase's
    QSM cost ``C`` reaches ``L / (slack·(factor − ballast))`` the
    per-phase overheads are absorbed.  Infinite if ``factor`` does not
    even cover the ballast.
    """
    if factor <= emu.ballast:
        return math.inf
    return bsp.L / (emu.slack * (factor - emu.ballast))
