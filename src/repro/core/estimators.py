"""Generic model estimates from measured per-phase word counts.

The *QSM estimate* lines in Figures 2 and 3 are "calculation[s] based
on the actual problem-size compression achieved in each phase" — i.e.
plug the observed per-phase maxima into the model.  These estimators do
that for **any** program's :class:`~repro.qsmlib.stats.RunResult`, using
the effective per-word costs of :class:`~repro.qsmlib.costmodel.CommCostModel`
(so estimates and measurements share the machine's constants, as the
paper's did).  The per-algorithm closed forms in ``predict_*`` must
agree with these generic estimates — the test suite enforces it.
"""

from __future__ import annotations

from repro.qsmlib.costmodel import CommCostModel
from repro.qsmlib.stats import RunResult


def qsm_comm_estimate(run: RunResult, costs: CommCostModel) -> float:
    """QSM communication estimate from observed skews.

    Per phase, the busiest processor's remote traffic is priced with
    the software layer folded into the per-word gaps.  The paper
    presents running times for the **s-QSM**, which charges the gap at
    processors *and* at memory (§3.1.1): each processor's phase load is
    therefore its outbound traffic (puts issued, get requests sent)
    plus the traffic it serves as a memory owner (puts landing on it,
    get requests it answers)::

        max_i [ put_out_i·g_put_src + put_in_i·g_put_dst
                + get_out_i·g_get_req + get_served_i·g_get_serve ]

    summed over phases.  Latency, per-message overhead, plan
    distribution and barriers are ignored — exactly the model's
    simplification.
    """
    total = 0.0
    for ph in run.phases:
        per_proc = (
            ph.put_words * costs.put_word_src_cycles
            + ph.get_words * costs.get_word_requester_cycles
        )
        if ph.put_in_words is not None:
            per_proc = per_proc + ph.put_in_words * costs.put_word_dst_cycles
        if ph.get_served_words is not None:
            per_proc = per_proc + ph.get_served_words * costs.get_word_server_cycles
        total += float(per_proc.max()) if per_proc.size else 0.0
    return total


def bsp_comm_estimate(run: RunResult, costs: CommCostModel) -> float:
    """BSP communication estimate: the QSM estimate plus L per superstep."""
    return qsm_comm_estimate(run, costs) + run.n_phases * costs.barrier_cycles(run.p)
