"""Prediction lines for list ranking (Figure 3).

The paper writes the QSM running time as::

    π·g·(c1/2 + 7·c2/4)·Σ x_i  +  4·π'·g·z

with ``x_i`` the per-iteration maximum active count at any processor,
``z`` the survivors sent to processor 0, ``π``/``π'`` remote fractions
and ``c1``/``c2`` correction factors on the flip/removal counts.  Our
implementation's per-iteration traffic is (per processor, remote
fraction π):

* ``flip1_i`` get words (successor flips of candidates that flipped 1 —
  the ``c1/2·x_i`` term),
* ``3·removed_i`` put words (splice + distance contribution),
* ``removed_i`` get words during the matching expansion iteration

(the paper's combined coefficient ``7·c2/4·x_i``, ours is ``4·c2/4``
with one extra get because the forward-rank formulation differs), plus
the endgame: count broadcast ``p−1``, shipping ``3·z_local`` words to
node 0, and node 0's rank write-back of ``z`` words.

Lines: :meth:`best_case` (no skew: ``x_i = (n/p)(3/4)^{i−1}``, flips
``x_i/2``, removals ``x_i/4``, ``z = n(3/4)^T``), :meth:`whp_bound`
(Chernoff per iteration, union over processors and iterations, ≥ 90%),
and the observed-skew estimate.  BSP adds ``L`` per phase
(``4T + 5`` phases total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.algorithms.common import log2ceil
from repro.algorithms.listrank import ListRankParams
from repro.core.chernoff import chernoff_binomial_lower, chernoff_binomial_upper
from repro.core.estimators import bsp_comm_estimate, qsm_comm_estimate
from repro.machine.cpu import CPUModel
from repro.qsmlib.costmodel import CommCostModel
from repro.qsmlib.stats import RunResult


@dataclass
class ListRankPredictor:
    """Analytic QSM/BSP predictions for the implemented list ranking."""

    p: int
    costs: CommCostModel
    cpu: CPUModel
    params: ListRankParams = ListRankParams()
    confidence: float = 0.9

    @property
    def iterations(self) -> int:
        return self.params.iterations(self.p)

    @property
    def n_phases(self) -> int:
        """1 registration + 3·T compression + 3 endgame + T expansion + 1 free."""
        return 4 * self.iterations + 5

    # ------------------------------------------------------------------
    # Core closed form
    # ------------------------------------------------------------------
    def qsm_comm(
        self,
        flips: List[float],
        removals: List[float],
        z_local: float,
        z_total: float,
        pi: float,
    ) -> float:
        """QSM communication from per-iteration skews, in cycles."""
        g_put = self.costs.put_word_cycles
        g_get = self.costs.get_word_cycles
        total = 0.0
        for f, rm in zip(flips, removals):
            total += pi * f * g_get  # phase B: successor flips
            total += pi * 3.0 * rm * g_put  # phase C: splice + distance
            total += pi * rm * g_get  # expansion: predecessor rank
        total += (self.p - 1) * g_put  # survivor-count broadcast
        total += 3.0 * z_local * g_put  # ship survivors to node 0
        total += z_total * pi * g_put  # node 0 writes ranks back
        return total

    def bsp_comm(self, *args, **kwargs) -> float:
        return self.qsm_comm(*args, **kwargs) + self.n_phases * self.costs.barrier_cycles(
            self.p
        )

    # ------------------------------------------------------------------
    # Scenario skews
    # ------------------------------------------------------------------
    def best_case_skews(self, n: int) -> Tuple[List[float], List[float], float, float, float]:
        """No randomization skew: geometric decay at rate 3/4."""
        T = self.iterations
        x = n / self.p
        flips, removals = [], []
        for _ in range(T):
            flips.append(x / 2.0)
            removals.append(x / 4.0)
            x *= 0.75
        z_local = x
        z_total = min(float(n), self.p * x)
        pi = (self.p - 1) / self.p
        return flips, removals, z_local, z_total, pi

    def whp_skews(self, n: int) -> Tuple[List[float], List[float], float, float, float]:
        """Chernoff-bounded evolution holding for ≥ `confidence` of runs.

        Upper-bounds the flip count (Bin(x, 1/2) upper tail) and
        lower-bounds the removal count (Bin(x, 1/4) lower tail) in each
        iteration, with the failure budget split over processors and
        2·T events.
        """
        T = self.iterations
        if T == 0:
            return [], [], n / self.p, float(n), (self.p - 1) / self.p
        alpha = 1.0 - self.confidence
        union = self.p * 2 * T
        x = float(-(-n // self.p))
        flips, removals = [], []
        for _ in range(T):
            xi = max(1, int(x))
            flips.append(float(chernoff_binomial_upper(xi, 0.5, alpha=alpha, union=union)))
            removed = float(chernoff_binomial_lower(xi, 0.25, alpha=alpha, union=union))
            removals.append(removed)
            x = max(0.0, x - removed)
        z_local = x
        z_total = min(float(n), self.p * x)
        pi = (self.p - 1) / self.p
        return flips, removals, z_local, z_total, pi

    def qsm_best_case(self, n: int) -> float:
        return self.qsm_comm(*self.best_case_skews(n))

    def qsm_whp_bound(self, n: int) -> float:
        return self.qsm_comm(*self.whp_skews(n))

    def bsp_best_case(self, n: int) -> float:
        return self.bsp_comm(*self.best_case_skews(n))

    def bsp_whp_bound(self, n: int) -> float:
        return self.bsp_comm(*self.whp_skews(n))

    def qsm_estimate_from_run(self, run: RunResult) -> float:
        """Observed-skew estimate: the generic per-phase QSM estimate."""
        return qsm_comm_estimate(run, self.costs)

    def bsp_estimate_from_run(self, run: RunResult) -> float:
        return bsp_comm_estimate(run, self.costs)

    # ------------------------------------------------------------------
    def expected_sum_x(self, n: int) -> float:
        """Σ x_i in the best case (the paper's leading term)."""
        T = self.iterations
        x = n / self.p
        return x * (1.0 - 0.75**T) / 0.25 if T else 0.0
