"""Parameter sets of the four parallel computation models (§2.1).

The point of the paper is the *number* of parameters: QSM exposes only
``(p, g)``; BSP adds the superstep/synchronization cost ``L``; LogP
adds per-message overhead ``o`` and replaces ``L`` with a latency ``l``
and a capacity constraint.  These dataclasses carry the parameters and
their documented meaning; :mod:`repro.core.models` evaluates costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class QSMParams:
    """Queuing Shared Memory: processors and the bandwidth gap only.

    ``g`` is the ratio between the local instruction rate and the
    remote communication rate, in whatever unit pair the analysis uses
    (cycles per word here).  A phase doing at most ``m_op`` local
    operations, ``m_rw`` remote reads/writes per processor and hitting
    any one location at most ``kappa`` times costs
    ``max(m_op, g·m_rw, kappa)``.
    """

    p: int
    g: float

    def __post_init__(self) -> None:
        check_positive("p", self.p)
        check_positive("g", self.g)


@dataclass(frozen=True)
class SQSMParams:
    """Symmetric QSM: the gap also applies at memory, so a phase costs
    ``max(m_op, g·m_rw, g·kappa)``.  The paper's measurements are
    presented for the s-QSM (§3.1.1)."""

    p: int
    g: float

    def __post_init__(self) -> None:
        check_positive("p", self.p)
        check_positive("g", self.g)


@dataclass(frozen=True)
class BSPParams:
    """Bulk Synchronous Parallel: gap plus per-superstep cost ``L``.

    A superstep with local work ``w`` and h-relation ``h`` costs
    ``w + g·h + L``.
    """

    p: int
    g: float
    L: float

    def __post_init__(self) -> None:
        check_positive("p", self.p)
        check_positive("g", self.g)
        if self.L < 0:
            raise ValueError(f"L must be >= 0, got {self.L}")


@dataclass(frozen=True)
class LogPParams:
    """LogP: latency ``l``, overhead ``o``, gap ``g``, processors ``p``.

    ``g`` here is the minimum interval between consecutive message
    injections (per message of the fixed small size); the capacity
    constraint allows at most ``ceil(l/g)`` undelivered messages to any
    destination.
    """

    p: int
    l: float
    o: float
    g: float

    def __post_init__(self) -> None:
        check_positive("p", self.p)
        check_positive("g", self.g)
        if self.l < 0 or self.o < 0:
            raise ValueError("l and o must be >= 0")

    @property
    def capacity(self) -> int:
        """Maximum in-flight messages to one destination: ceil(l/g)."""
        return max(1, -(-int(self.l) // max(int(self.g), 1)))
