"""The paper's primary contribution: QSM cost modelling and prediction.

* :mod:`repro.core.params` — parameter sets of the four models the
  paper discusses (QSM, s-QSM, BSP, LogP; §2.1 and Table 1);
* :mod:`repro.core.models` — phase/superstep cost evaluation for each
  model, usable on abstract op counts or on measured
  :class:`~repro.qsmlib.stats.PhaseRecord` logs;
* :mod:`repro.core.chernoff` — binomial tail machinery behind every
  *WHP bound* line (90% confidence, union bound over processors);
* :mod:`repro.core.estimators` — generic QSM/BSP communication
  estimates computed from a run's observed per-phase word counts.

The closed-form Best-case, WHP-bound, QSM-estimate and BSP-estimate
lines of Figures 1–3 live in :mod:`repro.predict` (the pluggable model
engine built on these primitives).
"""

from repro.core.params import BSPParams, LogPParams, QSMParams, SQSMParams
from repro.core.models import (
    BSPModel,
    LogPModel,
    PhaseWork,
    QSMModel,
    SQSMModel,
)
from repro.core.chernoff import (
    chernoff_binomial_lower,
    binomial_tail_inverse_exact,
    chernoff_binomial_upper,
    chernoff_delta_upper,
    oversampling_bucket_bound,
)
from repro.core.estimators import bsp_comm_estimate, qsm_comm_estimate
from repro.core.emulation import (
    EmulationParams,
    emulation_slowdown,
    qsm_phase_on_bsp,
    qsm_program_on_bsp,
    work_preserving_threshold,
)
from repro.core.pram import AccessRule, PRAMAccessError, PRAMModel, PRAMParams, pram_vs_qsm_phase_gap

__all__ = [
    "QSMParams",
    "SQSMParams",
    "BSPParams",
    "LogPParams",
    "PhaseWork",
    "QSMModel",
    "SQSMModel",
    "BSPModel",
    "LogPModel",
    "chernoff_binomial_upper",
    "chernoff_binomial_lower",
    "chernoff_delta_upper",
    "binomial_tail_inverse_exact",
    "oversampling_bucket_bound",
    "qsm_comm_estimate",
    "bsp_comm_estimate",
    "EmulationParams",
    "emulation_slowdown",
    "qsm_phase_on_bsp",
    "qsm_program_on_bsp",
    "work_preserving_threshold",
    "AccessRule",
    "PRAMAccessError",
    "PRAMModel",
    "PRAMParams",
    "pram_vs_qsm_phase_gap",
]
