"""PRAM cost models (the §2.1 comparison baseline).

The PRAM charges unit time per parallel step and unit time per shared
memory access — no bandwidth, latency, or synchronization cost.  The
paper's §2.1 argues this mismatches real machines in two ways we can
exhibit with the simulator:

1. **no bandwidth term** — PRAM costs ignore ``g·m_rw`` entirely;
2. **step-synchronous style** — PRAM algorithms take many more phases
   than QSM formulations of the same problem (e.g. log p rounds of
   pointer-style prefix vs. QSM's single phase), and on a real machine
   every phase pays the sync floor.

Variants differ in their *memory access rules*, enforced against the
measured ``kappa``:

* ``EREW`` — exclusive read, exclusive write: kappa must be ≤ 1;
* ``CREW`` — concurrent read, exclusive write: concurrent reads free;
* ``CRCW`` — concurrent everything, unit time regardless of kappa.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.core.models import PhaseWork
from repro.util.validation import check_positive


class AccessRule(enum.Enum):
    """PRAM memory access discipline."""

    EREW = "erew"
    CREW = "crew"
    CRCW = "crcw"


class PRAMAccessError(ValueError):
    """A phase violates the PRAM variant's memory access rule."""


@dataclass(frozen=True)
class PRAMParams:
    """The PRAM's single architectural parameter."""

    p: int
    rule: AccessRule = AccessRule.EREW

    def __post_init__(self) -> None:
        check_positive("p", self.p)


class PRAMModel:
    """Unit-cost PRAM evaluation over :class:`PhaseWork` records.

    A phase costs ``m_op + m_rw`` (every operation and every shared
    access is one unit; no gap, no latency, no barrier).  The access
    rule is checked against kappa when it is known.
    """

    def __init__(self, params: PRAMParams) -> None:
        self.params = params

    def check_access(self, work: PhaseWork) -> None:
        if self.params.rule is AccessRule.CRCW:
            return
        if self.params.rule is AccessRule.EREW and work.kappa > 1:
            raise PRAMAccessError(
                f"EREW PRAM forbids concurrent access (kappa={work.kappa:g})"
            )
        # CREW: we cannot distinguish read from write contention in a
        # PhaseWork record; treat kappa as read contention (allowed).

    def phase_cost(self, work: PhaseWork) -> float:
        self.check_access(work)
        return work.m_op + work.m_rw

    def program_cost(self, phases: Iterable[PhaseWork]) -> float:
        return sum(self.phase_cost(w) for w in phases)


def pram_vs_qsm_phase_gap(n_phases_pram: int, n_phases_qsm: int, sync_floor_cycles: float) -> float:
    """Extra real-machine cycles a PRAM-style phase structure pays.

    The PRAM model itself charges nothing for synchronization; on an
    actual machine each extra phase costs at least the empty-sync floor
    (plan + barrier + bookkeeping).  This helper quantifies §2.1's
    "larger latency and synchronization costs than in the QSM".
    """
    if n_phases_pram < n_phases_qsm:
        raise ValueError("PRAM formulation assumed to use at least as many phases")
    return (n_phases_pram - n_phases_qsm) * sync_floor_cycles
