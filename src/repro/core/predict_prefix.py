"""Prediction lines for the prefix-sums algorithm (Figure 1).

The QSM analysis of the implemented algorithm predicts communication
``g·(p−1)`` — one broadcast word to each peer, independent of ``n``.
BSP adds one superstep's ``L``.  Neither accounts for per-message
overhead or latency, which dominate here because the messages are tiny:
this is the paper's example of a *large relative / small absolute*
prediction error (§3.2 "Prefix").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.common import profile_scan_add
from repro.machine.cpu import CPUModel
from repro.qsmlib.costmodel import CommCostModel
from repro.qsmlib.stats import RunResult


@dataclass
class PrefixPredictor:
    """Analytic QSM/BSP predictions for the implemented prefix sums."""

    p: int
    costs: CommCostModel
    cpu: CPUModel

    #: The algorithm uses exactly one synchronization.
    N_PHASES = 1

    # -- communication ----------------------------------------------------
    def qsm_comm(self, n: int) -> float:
        """QSM estimate: g·(p−1), with g the effective put-word cost."""
        return (self.p - 1) * self.costs.put_word_cycles

    def bsp_comm(self, n: int) -> float:
        """BSP estimate: QSM plus one superstep's L."""
        return self.qsm_comm(n) + self.N_PHASES * self.costs.barrier_cycles(self.p)

    # -- computation -------------------------------------------------------
    def compute(self, n: int) -> float:
        """Local-work estimate matching the program's charges."""
        per_proc = -(-n // self.p)
        phase1 = self.cpu.cycles(profile_scan_add(per_proc))
        phase2 = self.cpu.cycles(profile_scan_add(self.p)) + self.cpu.cycles(
            profile_scan_add(per_proc)
        )
        return phase1 + phase2

    def qsm_total(self, n: int) -> float:
        return self.compute(n) + self.qsm_comm(n)

    def bsp_total(self, n: int) -> float:
        return self.compute(n) + self.bsp_comm(n)

    # -- sanity hook -------------------------------------------------------
    def check_run(self, run: RunResult) -> None:
        """Assert the measured run has the predicted communication shape."""
        if run.n_phases != self.N_PHASES:
            raise AssertionError(
                f"prefix sums should synchronize once, measured {run.n_phases}"
            )
        if run.sum_max_put_words() != self.p - 1:
            raise AssertionError(
                f"prefix sums should put p-1 remote words, measured "
                f"{run.sum_max_put_words()}"
            )
