"""Cost evaluation under the four models.

Each model consumes :class:`PhaseWork` descriptions — the abstract
quantities Table 1 says an algorithm designer should track — and
returns time costs in the model's unit (local operations; with ``g``
expressed in cycles per word the costs come out in cycles).

These evaluators serve three roles in the reproduction:

1. textbook reference implementations (tested against hand-computed
   examples),
2. generic re-analysis of *measured* runs: a
   :class:`~repro.qsmlib.stats.PhaseRecord` maps directly onto a
   :class:`PhaseWork`,
3. the machinery behind the prediction lines of Figures 1–3 (via
   :mod:`repro.core.estimators`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.params import BSPParams, LogPParams, QSMParams, SQSMParams


@dataclass(frozen=True)
class PhaseWork:
    """Per-phase quantities: the algorithm-designer's view (Table 1).

    ``m_op`` — max local operations at any processor;
    ``m_rw`` — max remote reads+writes by any processor;
    ``kappa`` — max accesses to any one shared-memory word;
    ``messages`` — max messages sent by any processor (LogP only).
    """

    m_op: float = 0.0
    m_rw: float = 0.0
    kappa: float = 0.0
    messages: float = 0.0

    def __post_init__(self) -> None:
        for name in ("m_op", "m_rw", "kappa", "messages"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @classmethod
    def from_phase_record(cls, record) -> "PhaseWork":
        """Build from a measured :class:`~repro.qsmlib.stats.PhaseRecord`."""
        return cls(
            m_op=float(record.op_counts.max()) if record.op_counts.size else 0.0,
            m_rw=float(record.max_m_rw),
            kappa=float(record.kappa or 0),
        )


class QSMModel:
    """QSM phase cost: ``max(m_op, g·m_rw, kappa)`` (§2)."""

    def __init__(self, params: QSMParams) -> None:
        self.params = params

    def phase_cost(self, work: PhaseWork) -> float:
        g = self.params.g
        return max(work.m_op, g * work.m_rw, work.kappa)

    def program_cost(self, phases: Iterable[PhaseWork]) -> float:
        return sum(self.phase_cost(w) for w in phases)


class SQSMModel:
    """s-QSM phase cost: ``max(m_op, g·m_rw, g·kappa)`` (§2).

    The symmetric variant charges the gap at the memory side too; the
    paper presents its running times for the s-QSM.
    """

    def __init__(self, params: SQSMParams) -> None:
        self.params = params

    def phase_cost(self, work: PhaseWork) -> float:
        g = self.params.g
        return max(work.m_op, g * work.m_rw, g * work.kappa)

    def program_cost(self, phases: Iterable[PhaseWork]) -> float:
        return sum(self.phase_cost(w) for w in phases)


class BSPModel:
    """BSP superstep cost: ``w + g·h + L`` (§2.1).

    The h-relation of a QSM phase is its ``m_rw`` (words in or out per
    processor); hot-spot contention has no separate term in BSP.
    """

    def __init__(self, params: BSPParams) -> None:
        self.params = params

    def superstep_cost(self, work: PhaseWork) -> float:
        return work.m_op + self.params.g * work.m_rw + self.params.L

    def program_cost(self, phases: Iterable[PhaseWork]) -> float:
        return sum(self.superstep_cost(w) for w in phases)


class LogPModel:
    """LogP cost of a bulk-synchronous phase.

    Sending ``M`` messages costs the sender ``o + (M−1)·max(g, o) + o``
    overhead/gap cycles with the last message landing ``l`` later; for a
    phase where every processor sends its ``messages`` and then
    synchronizes, the standard estimate is::

        m_op + 2·o·M + (M−1)·max(g−o, 0) + l

    (consecutive submissions are spaced by ``max(g, o)``; the receive
    overhead of the last message cannot be hidden).
    """

    def __init__(self, params: LogPParams) -> None:
        self.params = params

    def phase_cost(self, work: PhaseWork) -> float:
        prm = self.params
        m = work.messages
        if m <= 0:
            return work.m_op
        spacing = max(prm.g, prm.o)
        send_time = prm.o + (m - 1) * spacing
        return work.m_op + send_time + prm.l + prm.o

    def program_cost(self, phases: Iterable[PhaseWork]) -> float:
        return sum(self.phase_cost(w) for w in phases)


def compare_models(
    phases: Sequence[PhaseWork],
    qsm: QSMParams,
    sqsm: SQSMParams,
    bsp: BSPParams,
    logp: LogPParams,
) -> dict:
    """Evaluate one program under all four models (teaching/inspection)."""
    return {
        "qsm": QSMModel(qsm).program_cost(phases),
        "s-qsm": SQSMModel(sqsm).program_cost(phases),
        "bsp": BSPModel(bsp).program_cost(phases),
        "logp": LogPModel(logp).program_cost(phases),
    }
