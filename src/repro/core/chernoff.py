"""Binomial tail bounds behind every *WHP bound* line.

The paper derives bounds that hold for at least 90% of runs "by
applying Chernoff bounds on B and r" (sample sort, §3.2) and on the
per-iteration survivor counts (list ranking).  We implement:

* the classic multiplicative Chernoff upper bound, inverted in closed
  form (what the paper used — conservative by design);
* an exact inverse binomial tail via scipy, used by the test suite to
  confirm the Chernoff inversion is a valid (and not absurdly loose)
  upper bound.

All bounds take a ``union`` factor: with p processors (and possibly
several phases) the failure budget alpha is split evenly across the
events, the standard union-bound discipline.
"""

from __future__ import annotations

import math

from scipy import stats


def chernoff_delta_upper(mu: float, alpha: float) -> float:
    """Smallest δ with ``exp(−δ²·μ / (2+δ)) ≤ alpha``.

    Uses the multiplicative Chernoff form
    ``P[X ≥ (1+δ)μ] ≤ exp(−δ²μ/(2+δ))`` valid for all δ > 0, and solves
    the quadratic ``δ²μ − tδ − 2t = 0`` with ``t = ln(1/alpha)``.
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0,1), got {alpha}")
    t = math.log(1.0 / alpha)
    return (t + math.sqrt(t * t + 8.0 * t * mu)) / (2.0 * mu)


def chernoff_binomial_upper(n: int, prob: float, alpha: float = 0.1, union: int = 1) -> int:
    """Upper bound m with ``P[Bin(n, prob) ≥ m] ≤ alpha/union`` (Chernoff).

    This is the bound the WHP prediction lines plug in for the largest
    bucket / per-processor survivor counts: with ``union = p`` events,
    all stay below their bound simultaneously with probability at least
    ``1 − alpha``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0 <= prob <= 1:
        raise ValueError(f"prob must be in [0,1], got {prob}")
    if union < 1:
        raise ValueError(f"union must be >= 1, got {union}")
    if n == 0 or prob == 0:
        return 0
    mu = n * prob
    delta = chernoff_delta_upper(mu, alpha / union)
    return min(n, int(math.ceil((1.0 + delta) * mu)))


def chernoff_binomial_lower(n: int, prob: float, alpha: float = 0.1, union: int = 1) -> int:
    """Lower bound m with ``P[Bin(n, prob) ≤ m] ≤ alpha/union`` (Chernoff).

    Uses ``P[X ≤ (1−δ)μ] ≤ exp(−δ²μ/2)``.  The list-ranking WHP bound
    needs this: slow removal (few eliminations) is the bad event that
    keeps per-processor work high.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0 <= prob <= 1:
        raise ValueError(f"prob must be in [0,1], got {prob}")
    if union < 1:
        raise ValueError(f"union must be >= 1, got {union}")
    if n == 0 or prob == 0:
        return 0
    mu = n * prob
    t = math.log(union / alpha)
    delta = math.sqrt(2.0 * t / mu)
    if delta >= 1.0:
        return 0
    return max(0, int(math.floor((1.0 - delta) * mu)))


def oversampling_bucket_bound(n: int, p: int, s: int, alpha: float = 0.05) -> float:
    """WHP bound on the largest sample-sort bucket under over-sampling.

    With ``p·s`` random samples and pivots taken every ``s``-th sorted
    sample, a bucket exceeding ``m = (1+δ)·n/p`` elements implies some
    window of ``m`` consecutive sorted elements contains at most ``s``
    samples, whose expected count is ``(1+δ)·s``.  The Chernoff lower
    tail plus a union bound over ~2p covering windows gives, for
    ``t = ln(2p/alpha)``::

        δ = (t + sqrt(t² + 2·t·s)) / s

    Crucially δ depends on the *sample count*, not on n: the bound is a
    constant factor above n/p, which is why the WHP line of Figure 2
    has a different slope than the best case.
    """
    if n < 1 or p < 1 or s < 1:
        raise ValueError("n, p, s must be >= 1")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0,1), got {alpha}")
    t = math.log(2.0 * p / alpha)
    delta = (t + math.sqrt(t * t + 2.0 * t * s)) / s
    return min(float(n), (1.0 + delta) * n / p)


def binomial_tail_inverse_exact(n: int, prob: float, alpha: float = 0.1, union: int = 1) -> int:
    """Exact counterpart: smallest m with ``P[Bin(n,prob) ≥ m] ≤ alpha/union``.

    Uses the exact binomial survival function; always ≤ the Chernoff
    bound (the tests assert this ordering).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0 <= prob <= 1:
        raise ValueError(f"prob must be in [0,1], got {prob}")
    if union < 1:
        raise ValueError(f"union must be >= 1, got {union}")
    if n == 0 or prob == 0:
        return 0
    target = alpha / union
    # P[X >= m] = sf(m - 1); isf gives the smallest x with sf(x) <= target.
    m = int(stats.binom.isf(target, n, prob)) + 1
    return min(n, max(0, m))
