"""Prediction lines for sample sort (Figure 2).

The paper's QSM analysis of the algorithm gives (per-word gap ``g``)::

    4(p−1)·g·log n  +  3(p−1)·g  +  g·B·r  +  g·B

sample broadcast, control traffic (counts + bucket totals), bucket
gather (``B`` = largest bucket, ``r`` = its remote fraction), and the
output write.  Our implementation computes output offsets so that a
perfectly balanced bucket lands exactly on its owner's block — the
output-write term is therefore *zero* in the best case and grows with
the imbalance (bounded by ``p·(B − n/p)``), slightly sharper than the
paper's blanket ``g·B``.  Three prediction lines:

* :meth:`best_case` — ``B = n/p``, ``r = (p−1)/p``, aligned output;
* :meth:`whp_bound` — Chernoff bounds on ``B`` and the misalignment,
  holding for ≥ 90% of runs (union bound over the p buckets);
* :meth:`estimate_from_run` — the observed skews plugged in, which is
  by construction the generic QSM estimate of the measured run.

BSP versions add ``5·L`` (five supersteps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.common import (
    log2ceil,
    profile_copy,
    profile_gather_scatter,
    profile_partition,
    profile_scan_add,
    profile_sort,
)
from repro.algorithms.samplesort import SampleSortParams
from repro.core.chernoff import chernoff_binomial_upper, oversampling_bucket_bound
from repro.core.estimators import bsp_comm_estimate, qsm_comm_estimate
from repro.machine.cpu import CPUModel
from repro.qsmlib.costmodel import CommCostModel
from repro.qsmlib.stats import RunResult


@dataclass
class SampleSortPredictor:
    """Analytic QSM/BSP predictions for the implemented sample sort."""

    p: int
    costs: CommCostModel
    cpu: CPUModel
    params: SampleSortParams = SampleSortParams()
    confidence: float = 0.9

    N_PHASES = 5

    # ------------------------------------------------------------------
    # Core closed form
    # ------------------------------------------------------------------
    def qsm_comm(self, n: int, B: float, r: float, out_remote: float) -> float:
        """QSM communication for given skews, in cycles.

        ``B`` — largest bucket; ``r`` — largest remote fraction of a
        bucket; ``out_remote`` — remote words of the final write.
        """
        p = self.p
        s = self.params.samples_per_proc(n)
        g_put = self.costs.put_word_cycles
        g_get = self.costs.get_word_cycles
        samples = s * (p - 1) * g_put  # phase 1 (the paper's 4(p−1)g·log n)
        control = (2 * (p - 1) + (p - 1)) * g_put  # phases 2+3 (3(p−1)g)
        gather = B * r * g_get  # phase 3 (g·B·r)
        output = out_remote * g_put  # phase 4 (≤ g·B)
        return samples + control + gather + output

    def bsp_comm(self, n: int, B: float, r: float, out_remote: float) -> float:
        return self.qsm_comm(n, B, r, out_remote) + self.N_PHASES * self.costs.barrier_cycles(
            self.p
        )

    # ------------------------------------------------------------------
    # The three load-balance scenarios (Figure 2's lines)
    # ------------------------------------------------------------------
    def best_case_skews(self, n: int) -> tuple:
        """Perfect balance: B = n/p, r = (p−1)/p, aligned output."""
        B = n / self.p
        return B, (self.p - 1) / self.p, 0.0

    def whp_skews(self, n: int) -> tuple:
        """Chernoff bounds holding for ≥ `confidence` of runs.

        The largest bucket is bounded by the over-sampling window
        argument (:func:`~repro.core.chernoff.oversampling_bucket_bound`)
        — a constant factor above n/p determined by the per-processor
        sample count, matching the paper's observation that the WHP
        line's *slope* differs from the best case's.
        """
        alpha = 1.0 - self.confidence
        s = self.params.samples_per_proc(n)
        B = oversampling_bucket_bound(n, self.p, s, alpha=alpha)
        r = 1.0  # safe upper bound on the remote fraction
        out_remote = min(B, self.p * max(0.0, B - n / self.p))
        return float(B), r, out_remote

    def qsm_best_case(self, n: int) -> float:
        return self.qsm_comm(n, *self.best_case_skews(n))

    def qsm_whp_bound(self, n: int) -> float:
        return self.qsm_comm(n, *self.whp_skews(n))

    def bsp_best_case(self, n: int) -> float:
        return self.bsp_comm(n, *self.best_case_skews(n))

    def bsp_whp_bound(self, n: int) -> float:
        return self.bsp_comm(n, *self.whp_skews(n))

    def qsm_estimate_from_run(self, run: RunResult) -> float:
        """The observed-skew estimate (generic per-phase QSM estimate)."""
        return qsm_comm_estimate(run, self.costs)

    def bsp_estimate_from_run(self, run: RunResult) -> float:
        return bsp_comm_estimate(run, self.costs)

    # ------------------------------------------------------------------
    # Computation estimate for total-time lines
    # ------------------------------------------------------------------
    def compute(self, n: int, B: float = None) -> float:
        """Local-work estimate matching the program's charges."""
        p = self.p
        s = self.params.samples_per_proc(n)
        m = -(-n // p)
        if B is None:
            B = n / p
        cycles = 0.0
        cycles += self.cpu.cycles(profile_gather_scatter(s, region=m))  # sampling
        cycles += self.cpu.cycles(profile_sort(p * s))  # sample sort
        cycles += self.cpu.cycles(profile_partition(m, p))  # bucket assignment
        cycles += self.cpu.cycles(profile_gather_scatter(m, region=m))  # staging
        cycles += 2 * self.cpu.cycles(profile_scan_add(p))  # offsets
        cycles += self.cpu.cycles(profile_sort(int(B)))  # bucket sort
        cycles += self.cpu.cycles(profile_copy(int(B)))  # output copy
        return cycles

    def qsm_total_best_case(self, n: int) -> float:
        return self.compute(n) + self.qsm_best_case(n)
