"""Runtime QSM phase-conflict sanitizer.

Armed through :func:`repro.check.arm` (or ``QSM_SANITIZE=error|warn``),
the sanitizer shadows every processor's
:class:`~repro.qsmlib.requests.RequestQueue` and, at each ``sync()``,
rebuilds per-:class:`~repro.qsmlib.address_space.SharedArray` index
sets **vectorised** (numpy ``bincount``/``isin`` over the request index
arrays) to detect:

``QS001``  a cell both read and written within one phase — the QSM
           model violation of §2 (error);
``QS002``  a cell written by several processors — QSM-legal queue
           writes, reported with the resolution order the runtime
           actually applies (warning);
``QS003``  a put whose values need an unsafe dtype cast into the target
           array (error);
``QS004``  an out-of-bounds get/put, re-raised with pid and enqueue
           provenance (error);
``QS005``  collective-call incongruence — ``alloc``/``free`` requests
           diverging across pids within a phase, the deadlock shape
           (error);
``QS006``  a :class:`~repro.qsmlib.requests.GetHandle` read before the
           owning sync completes (error — enforced by the handle, the
           sanitizer adds the enqueue ``file:line``);
``QS007``  processors leaving SPMD lock-step — unequal sync counts
           (error, recorded alongside the driver's ``SPMDError``);
``QS008``  hot-cell contention — one cell's write multiplicity κ is
           both large (≥ ``_HOT_CELL_MIN``) and bigger than any
           processor's total queued words, so the phase's QSM cost
           ``max(m_op, g·m_rw, κ)`` is dominated by the contention
           term rather than by useful traffic (warning, with
           hottest-cell provenance).

Every diagnostic carries per-pid provenance: the program ``file:line``
captured at enqueue time (a few stack frames walked per request —
only when armed; a disarmed run pays one ``is not None`` branch per
enqueue site and nothing per simulated event).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.check.diagnostics import Diagnostic

#: Library frames skipped when attributing an enqueue to program code.
_INTERNAL_SUFFIXES = (
    os.sep + os.path.join("qsmlib", "requests.py"),
    os.sep + os.path.join("qsmlib", "context.py"),
    os.sep + os.path.join("check", "sanitizer.py"),
)

#: Cap on individually listed cells in one diagnostic message.
_MAX_CELLS_LISTED = 8

#: Minimum single-cell write multiplicity before QS008 considers the
#: cell "hot" — below this, κ-dominance is noise, not a pattern.
_HOT_CELL_MIN = 8


class SanitizerError(RuntimeError):
    """An error-severity sanitizer diagnostic in ``error`` mode."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.format())
        self.diagnostic = diagnostic


def _caller_origin() -> str:
    """``file:line`` of the nearest non-library frame (the program)."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(_INTERNAL_SUFFIXES):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _describe_cells(cells: np.ndarray) -> str:
    """Compact human description of a sorted cell index array."""
    cells = np.asarray(cells)
    if cells.size == 0:
        return "no cells"
    lo, hi = int(cells[0]), int(cells[-1])
    if cells.size == 1:
        return f"cell {lo}"
    if cells.size == hi - lo + 1:
        return f"cells {lo}..{hi} ({cells.size} cells)"
    listed = ", ".join(str(int(c)) for c in cells[:_MAX_CELLS_LISTED])
    extra = f", +{cells.size - _MAX_CELLS_LISTED} more" if cells.size > _MAX_CELLS_LISTED else ""
    return f"cells [{listed}{extra}]"


@dataclass
class PhaseSanitizer:
    """Process-global sanitizer state; see the module docstring."""

    mode: str = "error"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Enqueue-side hooks (called by RequestQueue only when armed)
    # ------------------------------------------------------------------
    def enqueue_origin(self) -> str:
        """Provenance of the current get/put enqueue (program file:line)."""
        return _caller_origin()

    def check_put_values(self, pid: int, arr, values, origin: Optional[str]) -> None:
        """Flag puts whose values need an unsafe cast into *arr*'s dtype."""
        vals = np.asarray(values)
        if vals.dtype == arr.dtype:
            return
        if np.can_cast(vals.dtype, arr.dtype, casting="same_kind"):
            return
        self._report(
            Diagnostic(
                code="QS003",
                severity="error",
                message=(
                    f"pid {pid} put {vals.dtype} values into array {arr.name!r} "
                    f"of dtype {arr.dtype}; the cast is unsafe (value-changing) — "
                    "convert explicitly if truncation is intended"
                ),
                array=arr.name,
                pids=(pid,),
                origins=_origin_tuple(pid, origin),
            )
        )

    def record_oob(self, pid: int, arr, op: str, exc: Exception, origin: Optional[str]) -> None:
        """Attach pid + provenance to an out-of-bounds get/put."""
        self._report(
            Diagnostic(
                code="QS004",
                severity="error",
                message=f"pid {pid} enqueued an out-of-bounds {op} on {arr.name!r}: {exc}",
                array=arr.name,
                pids=(pid,),
                origins=_origin_tuple(pid, origin),
            )
        )

    # ------------------------------------------------------------------
    # Sync-side checks (called by the program driver once per phase)
    # ------------------------------------------------------------------
    def check_phase(self, queues: Sequence, phase_idx: int) -> None:
        """Vectorised shadow pass over all queued requests of one phase.

        Entries are uniform ``(pid, indices, values, origin)`` tuples;
        gets carry ``values=None``.
        """
        per_array: Dict[int, list] = {}  # aid -> [arr, reads, writes]
        for q in queues:
            for req in q.gets:
                entry = per_array.setdefault(req.arr.aid, [req.arr, [], []])
                entry[1].append((q.pid, req.indices, None, req.origin))
            for req in q.puts:
                entry = per_array.setdefault(req.arr.aid, [req.arr, [], []])
                entry[2].append((q.pid, req.indices, req.values, req.origin))

        for arr, reads, writes in per_array.values():
            if writes and reads:
                self._check_rw_conflict(arr, reads, writes, phase_idx)
            if writes:
                self._check_multi_writer(arr, writes, phase_idx)
        self._check_hot_cell(per_array, queues, phase_idx)

    def _check_rw_conflict(self, arr, reads, writes, phase_idx: int) -> None:
        mask = np.zeros(arr.n, dtype=bool)
        mask[np.concatenate([idx for _, idx, _, _ in writes])] = True
        read_idx = np.concatenate([idx for _, idx, _, _ in reads])
        overlap = mask[read_idx]
        if not overlap.any():
            return
        cells = np.unique(read_idx[overlap])
        involved = [
            (kind, pid, origin)
            for kind, group in (("get", reads), ("put", writes))
            for pid, idx, _vals, origin in group
            if idx.size and np.isin(idx, cells, assume_unique=False).any()
        ]
        pids = tuple(sorted({pid for _, pid, _ in involved}))
        origins = tuple(
            f"pid {pid} ({kind}) @ {origin or '<unarmed enqueue>'}"
            for kind, pid, origin in involved
        )
        self._report(
            Diagnostic(
                code="QS001",
                severity="error",
                message=(
                    f"array {arr.name!r}: {_describe_cells(cells)} both read and "
                    f"written in one phase by pids {list(pids)} — QSM forbids "
                    "read/write of the same cell within a phase (§2)"
                ),
                phase=phase_idx,
                array=arr.name,
                cells=_describe_cells(cells),
                pids=pids,
                origins=origins,
            )
        )

    def _check_multi_writer(self, arr, writes, phase_idx: int) -> None:
        all_idx = np.concatenate([idx for _, idx, _, _ in writes])
        counts = np.bincount(all_idx, minlength=arr.n)
        if counts.max() <= 1:
            return
        cells = np.flatnonzero(counts > 1)
        # Apply order is queue (processor) order, then enqueue order within
        # a queue — the last applied put wins (see apply_phase_semantics).
        writers = [
            (pid, origin)
            for pid, idx, _vals, origin in writes
            if idx.size and np.isin(idx, cells).any()
        ]
        pids_in_order = [pid for pid, _ in writers]
        origins = tuple(
            f"pid {pid} (put) @ {origin or '<unarmed enqueue>'}" for pid, origin in writers
        )
        message = (
            f"array {arr.name!r}: {_describe_cells(cells)} written more than "
            f"once in one phase (writers in apply order: {pids_in_order}; "
            "resolution: puts apply in processor then enqueue order, so the "
            "last listed writer wins — QSM's queue-write 'arbitrary winner' "
            "made deterministic)"
        )
        detail = self._conflict_values(cells, writes)
        if detail:
            message += f"; values per cell: {detail}"
        self._report(
            Diagnostic(
                code="QS002",
                severity="warning",
                message=message,
                phase=phase_idx,
                array=arr.name,
                cells=_describe_cells(cells),
                pids=tuple(sorted(set(pids_in_order))),
                origins=origins,
            )
        )

    def _check_hot_cell(self, per_array: Dict, queues: Sequence, phase_idx: int) -> None:
        """QS008: flag a phase whose cost is dominated by one hot cell.

        QSM charges a phase ``max(m_op, g·m_rw, κ)`` where κ is the
        maximum contention on one cell.  When a single cell's write
        multiplicity is both large and bigger than any processor's
        total queued words, the ``g·κ`` term wins: the phase pays for
        serialised access to one location, not for useful traffic.
        That is almost always an accidental all-to-one reduction that
        should be a tree or a per-pid slot array.
        """
        hot_arr = None
        hot_cell = -1
        kappa = 0
        hot_writes = None
        for arr, _reads, writes in per_array.values():
            if not writes:
                continue
            all_idx = np.concatenate([idx for _, idx, _, _ in writes])
            if all_idx.size == 0:
                continue
            counts = np.bincount(all_idx, minlength=arr.n)
            top = int(counts.max())
            if top > kappa:
                kappa = top
                hot_arr = arr
                hot_cell = int(counts.argmax())
                hot_writes = writes
        if kappa < _HOT_CELL_MIN:
            return
        # m_rw: the largest per-processor total queued words this phase.
        m_rw = max(
            (
                sum(req.indices.size for req in q.gets)
                + sum(req.indices.size for req in q.puts)
            )
            for q in queues
        )
        if kappa <= m_rw:
            return  # traffic still dominates; contention is incidental
        writers = [
            (pid, origin)
            for pid, idx, _vals, origin in hot_writes
            if idx.size and (idx == hot_cell).any()
        ]
        pids = tuple(sorted({pid for pid, _ in writers}))
        origins = tuple(
            f"pid {pid} (put) @ {origin or '<unarmed enqueue>'}" for pid, origin in writers
        )
        self._report(
            Diagnostic(
                code="QS008",
                severity="warning",
                message=(
                    f"array {hot_arr.name!r}: cell {hot_cell} is written "
                    f"{kappa} times in one phase while no processor queues more "
                    f"than {m_rw} total words — the phase's QSM cost "
                    f"max(m_op, g·m_rw, κ) is dominated by contention on this "
                    "one cell (g·κ > g·m_rw); spread the writes (per-pid slots "
                    "or a tree reduction) to make traffic, not contention, the "
                    "bottleneck"
                ),
                phase=phase_idx,
                array=hot_arr.name,
                cells=f"cell {hot_cell}",
                pids=pids,
                origins=origins,
            )
        )

    @staticmethod
    def _conflict_values(cells: np.ndarray, writes) -> str:
        """Winner/loser values per conflicting cell, in apply order.

        Only rendered for small conflicts (``_MAX_CELLS_LISTED`` cells)
        — a large conflict's value dump would drown the diagnostic.
        """
        if cells.size > _MAX_CELLS_LISTED:
            return ""
        lines = []
        for c in cells:
            contribs = []
            for pid, idx, vals, _origin in writes:
                # Within one put request numpy fancy assignment also
                # applies duplicates last-wins, hence the last position.
                pos = np.flatnonzero(idx == c)
                if pos.size:
                    contribs.append(f"pid {pid} put {vals.reshape(-1)[pos[-1]]}")
            if contribs:
                contribs[-1] += " <- winner"
            lines.append(f"cell {int(c)}: " + ", ".join(contribs))
        return "; ".join(lines)

    def check_collectives(self, ctxs: Sequence, phase_idx: int) -> None:
        """Alloc/free congruence across pids — the deadlock shape.

        Diagnostics carry the ``file:line`` each participating pid's
        ``ctx.alloc``/``ctx.free`` call was made from, so an incongruent
        collective points straight at the diverging program branches.
        """
        alloc_names = sorted({name for ctx in ctxs for name in ctx._alloc_requests})
        for name in alloc_names:
            participants = [ctx.pid for ctx in ctxs if name in ctx._alloc_requests]
            missing = [ctx.pid for ctx in ctxs if name not in ctx._alloc_requests]
            origins = tuple(
                f"pid {ctx.pid} (alloc) @ {ctx._alloc_requests[name][2] or '<unarmed enqueue>'}"
                for ctx in ctxs
                if name in ctx._alloc_requests
            )
            if missing:
                self._report(
                    Diagnostic(
                        code="QS005",
                        severity="error",
                        message=(
                            f"collective alloc of {name!r} is incongruent: pids "
                            f"{participants} called it this phase but pids {missing} "
                            "did not — every processor must alloc identically"
                        ),
                        phase=phase_idx,
                        array=name,
                        pids=tuple(missing),
                        origins=origins,
                    )
                )
                continue
            specs = {ctx.pid: ctx._alloc_requests[name][0] for ctx in ctxs}
            if len(set(specs.values())) > 1:
                detail = ", ".join(f"pid {pid}: {spec}" for pid, spec in specs.items())
                self._report(
                    Diagnostic(
                        code="QS005",
                        severity="error",
                        message=f"collective alloc of {name!r} disagrees on spec ({detail})",
                        phase=phase_idx,
                        array=name,
                        pids=tuple(specs),
                        origins=origins,
                    )
                )
        free_counts = {ctx.pid: len(ctx._free_requests) for ctx in ctxs}
        if len(set(free_counts.values())) > 1:
            origins = tuple(
                f"pid {ctx.pid} (free) @ {origin or '<unarmed enqueue>'}"
                for ctx in ctxs
                for _item, origin in ctx._free_requests
            )
            self._report(
                Diagnostic(
                    code="QS005",
                    severity="error",
                    message=(
                        "collective free is incongruent: per-pid free counts "
                        f"{free_counts} diverge this phase"
                    ),
                    phase=phase_idx,
                    pids=tuple(sorted(free_counts)),
                    origins=origins,
                )
            )

    def note_desync(self, finished: Sequence[int], syncing: Sequence[int], phase_idx: int) -> None:
        """Record (never raise — the driver raises SPMDError) a lock-step split."""
        diag = Diagnostic(
            code="QS007",
            severity="error",
            message=(
                f"processors left SPMD lock-step: pids {list(finished)} finished "
                f"after {phase_idx} sync(s) while pids {list(syncing)} are still "
                "synchronizing — collective sync counts diverged"
            ),
            phase=phase_idx,
            pids=tuple(finished) + tuple(syncing),
        )
        self._record(diag)
        print(diag.format(), file=sys.stderr)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        errors = sum(d.severity == "error" for d in self.diagnostics)
        warnings = len(self.diagnostics) - errors
        return f"[sanitize] {errors} error(s), {warnings} warning(s) recorded"

    def _record(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)
        from repro import obs

        if obs.enabled():
            obs.metrics().counter(f"check.{diag.code}").inc()

    def _report(self, diag: Diagnostic) -> None:
        self._record(diag)
        if diag.severity == "error" and self.mode == "error":
            raise SanitizerError(diag)
        print(diag.format(), file=sys.stderr)


def _origin_tuple(pid: int, origin: Optional[str]) -> Tuple[str, ...]:
    return (f"pid {pid} @ {origin}",) if origin else ()
