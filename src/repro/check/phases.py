"""Symbolic SPMD phase analyzer: prove QSM phase-safety statically.

``python -m repro.check.phases src/repro/algorithms`` symbolically
executes every ``*_program`` generator it finds, splits the body into
phases at ``yield ctx.sync()``, abstracts each ``ctx.put`` / ``ctx.get``
/ ``ctx.get_range`` / ``ctx.local`` index expression into an affine
index region over ``(p, pid, n, block)`` (see
:mod:`repro.check.symbolic`), and decides the QSM phase contract for
**all** processor counts at once:

``QSA001`` (error)
    two processors may write the same cell in one phase
    (cross-pid write-write overlap, the static face of ``QS001``);
``QSA002`` (error)
    a processor may read (``get``) a cell another processor writes in
    the same phase (the "consume only after sync" rule, cf. ``QS002``);
``QSA003`` (error)
    the symbolic per-phase contention κ provably exceeds the bound the
    program declares via ``@phase_spec(kappa=...)``;
``QSA004`` (error)
    an index region provably escapes the array extent (cf. ``QS004``);
``QSA005`` (note)
    an index expression is not statically affine (data-dependent
    traffic) or a proof obligation is undecided — deferred to the
    runtime sanitizer.

Errors are only reported when they are *witnessed*: an undecided
obligation becomes an error only if a concrete small configuration
``(p, n, pids, ...)`` exhibiting the overlap is found, otherwise it
degrades to a ``QSA005`` note.  Findings carry the same
``file:line`` provenance the runtime sanitizer attaches to its
diagnostics, and honour ``# qsa: disable=QSA00N`` line suppressions.

Beyond safety, the analyzer derives a symbolic per-phase cost profile —
``n_syncs``, put/get word counts and κ as polynomials in ``p``, ``n``
and opaque auxiliaries — and cross-checks it against the closed forms
declared in :data:`repro.predict.sources.SYMBOLIC`.
"""

from __future__ import annotations

import argparse
import ast
import itertools
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.diagnostics import Diagnostic
from repro.check.symbolic import (
    ONE,
    PID,
    ZERO,
    Expr,
    Guard,
    ProofContext,
    QVar,
    Region,
    cross_pid_disjoint,
    region_injective,
    region_within,
    same_pid_disjoint,
)

__all__ = [
    "Access",
    "ArrayInfo",
    "LoopNode",
    "OpaqueSym",
    "PhaseNode",
    "ProgramAnalyzer",
    "ProgramReport",
    "analyze_file",
    "analyze_paths",
    "main",
    "parse_expr_str",
]

P = Expr.sym("p")
N = Expr.sym("n")
PIDE = Expr.sym(PID)

#: ``# qsa: disable=QSA001,QSA004`` suppression comments.
_SUPPRESS_RE = re.compile(r"#\s*qsa:\s*disable=([A-Z0-9_,\s]+)")


# ----------------------------------------------------------------------
# Tiny expression-string parser (spec extents, SYMBOLIC cross-check)
# ----------------------------------------------------------------------
def parse_expr_str(text: str) -> Expr:
    """Parse ``"4*T + 5"``-style strings into an exact :class:`Expr`."""
    node = ast.parse(text, mode="eval").body
    return _expr_from_node(node)


def _expr_from_node(node: ast.expr) -> Expr:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return Expr.const(node.value)
    if isinstance(node, ast.Name):
        return Expr.sym(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_expr_from_node(node.operand)
    if isinstance(node, ast.BinOp):
        left, right = _expr_from_node(node.left), _expr_from_node(node.right)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
    raise ValueError(f"unsupported symbolic expression: {ast.unparse(node)}")


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
class _Singleton:
    def __init__(self, tag: str) -> None:
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.tag}>"


#: Value the analyzer cannot reason about (data-dependent).
VUNKNOWN = _Singleton("unknown")
#: Abstract ``None``.
VNONE = _Singleton("none")


@dataclass
class VInt:
    """A (symbolic) integer scalar."""

    expr: Expr


@dataclass
class VRegion:
    """An integer index vector abstracted as an affine region."""

    region: Region


@dataclass
class VMask:
    """Boolean mask ``positions != exclude`` over an identity region."""

    region: Region
    exclude: Expr


@dataclass
class ArrayInfo:
    """Everything the analyzer knows about one shared array."""

    name: str
    extent: Optional[Expr]
    block: Optional[Expr]  # per-processor block size (BLOCKED layout)
    layout: str = "blocked"  # "blocked" | "root"


@dataclass
class VArray:
    info: ArrayInfo


@dataclass
class VAllocRef:
    """Result of ``ctx.alloc`` — ``.array`` resolves to the array."""

    info: ArrayInfo


@dataclass
class VLocal:
    """A ``ctx.local(arr)`` view of this pid's block."""

    info: ArrayInfo


@dataclass
class VTuple:
    items: Tuple[Any, ...]


@dataclass
class VList:
    """A list; ``item`` is the join of every element ever appended."""

    item: Any = None


@dataclass
class VObj:
    """An opaque named object (modules, params, ctx attributes)."""

    name: str


def join(a: Any, b: Any) -> Any:
    """Sound join of two abstract values (control-flow merge)."""
    if a is None:
        return b
    if b is None:
        return a
    if a is VNONE:
        return b
    if b is VNONE:
        return a
    if isinstance(a, VInt) and isinstance(b, VInt) and a.expr == b.expr:
        return a
    if isinstance(a, VRegion) and isinstance(b, VRegion) and a.region == b.region:
        return a
    if (
        isinstance(a, (VArray, VAllocRef, VLocal))
        and type(a) is type(b)
        and a.info is b.info
    ):
        return a
    if isinstance(a, VObj) and isinstance(b, VObj) and a.name == b.name:
        return a
    if isinstance(a, VTuple) and isinstance(b, VTuple) and len(a.items) == len(b.items):
        return VTuple(tuple(join(x, y) for x, y in zip(a.items, b.items)))
    if isinstance(a, VList) and isinstance(b, VList):
        return VList(join(a.item, b.item))
    return VUNKNOWN


# ----------------------------------------------------------------------
# Phase tree
# ----------------------------------------------------------------------
@dataclass
class Access:
    """One abstracted shared-memory access."""

    kind: str  # "put" | "get" | "local_write"
    array: str
    info: Optional[ArrayInfo]
    region: Optional[Region]
    guards: Tuple[Guard, ...]
    line: int
    origin: str  # "path:line", matching the runtime sanitizer format
    reason: str = ""  # why region is None
    #: How many times the enqueue runs per phase (None = data-dependent).
    multiplier: Optional[Expr] = ONE


@dataclass
class PhaseNode:
    """Statements between two ``yield ctx.sync()`` boundaries."""

    accesses: List[Access] = field(default_factory=list)
    charges: List[str] = field(default_factory=list)
    synced: bool = False
    sync_line: Optional[int] = None


@dataclass
class LoopNode:
    """A counted loop whose body contains phase boundaries."""

    count: Optional[Expr]
    var: Optional[str]
    order: str  # "fwd" | "rev"
    body: List[Any] = field(default_factory=list)
    line: int = 0


@dataclass
class OpaqueSym:
    """A stable but non-affine value modeled as a fresh symbol."""

    name: str
    origin: str  # python source text; evaluable by the validator
    floor: int = 0
    #: For block-size symbols: the array extent this is ceil(extent/p) of.
    derive_extent: Optional[Expr] = None


@dataclass
class SpecInfo:
    """Parsed ``@phase_spec`` contract (parsed statically from the AST)."""

    arrays: Dict[str, Expr] = field(default_factory=dict)
    kappa: Optional[Expr] = None
    assume: List[Expr] = field(default_factory=list)  # each fact: expr >= 0
    algo: Optional[str] = None
    declared: bool = False


def _spec_from_decorators(fn: ast.FunctionDef) -> SpecInfo:
    spec = SpecInfo()
    for dec in fn.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        func = dec.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name != "phase_spec":
            continue
        spec.declared = True
        for kw in dec.keywords:
            try:
                value = ast.literal_eval(kw.value)
            except (ValueError, SyntaxError):
                continue
            if kw.arg == "arrays" and isinstance(value, dict):
                for aname, ext in value.items():
                    spec.arrays[str(aname)] = parse_expr_str(str(ext))
            elif kw.arg == "kappa" and value is not None:
                spec.kappa = parse_expr_str(str(value))
            elif kw.arg == "algo" and value is not None:
                spec.algo = str(value)
            elif kw.arg == "assume":
                for fact in value:
                    lhs, _, rhs = str(fact).partition(">=")
                    if rhs:
                        spec.assume.append(
                            parse_expr_str(lhs.strip()) - parse_expr_str(rhs.strip())
                        )
    return spec


def _suppressions(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(source_lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[i] = {c.strip() for c in m.group(1).split(",") if c.strip()}
    return out


def _contains_sync(nodes: Iterable[ast.AST]) -> bool:
    for node in nodes:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Yield)
                and isinstance(sub.value, ast.Call)
                and isinstance(sub.value.func, ast.Attribute)
                and sub.value.func.attr == "sync"
            ):
                return True
    return False


def _is_sync_stmt(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Yield)
        and isinstance(stmt.value.value, ast.Call)
        and isinstance(stmt.value.value.func, ast.Attribute)
        and stmt.value.value.func.attr == "sync"
    )


# ----------------------------------------------------------------------
# The symbolic executor
# ----------------------------------------------------------------------
class ProgramAnalyzer:
    """Abstractly execute one SPMD program and build its phase tree."""

    def __init__(self, fn: ast.FunctionDef, path: str, source_lines: Sequence[str]):
        self.fn = fn
        self.path = path
        self.relpath = os.path.relpath(path)
        self.spec = _spec_from_decorators(fn)
        self.arrays: Dict[str, ArrayInfo] = {}
        self.opaques: Dict[str, OpaqueSym] = {}  # keyed by normalized origin
        self.opaque_names: Set[str] = set()
        self.lower: Dict[str, int] = {"p": 2, "n": 2}
        self.conditions: List[Expr] = [N - P] + list(self.spec.assume)
        self.notes: List[str] = []  # structure problems -> QSA005 notes
        self.suppress = _suppressions(source_lines)
        self.env: Dict[str, Any] = {}
        self.top: List[Any] = []
        self.sink: List[Any] = self.top
        self.cur = PhaseNode()
        self.guards: List[Guard] = []
        self.pguards: List[Guard] = []  # persistent early-exit facts
        self.mults: List[Optional[Expr]] = []
        self.record = True
        self.ignore_sync = False
        self.stopped = False
        self._fresh = 0
        self._blocks = 0
        self._pending_name: Optional[str] = None
        self._pending_node: Optional[ast.AST] = None

    # -- symbol plumbing ------------------------------------------------
    def _fresh_qvar(self) -> str:
        self._fresh += 1
        return f"q{self._fresh}"

    def _reserved(self) -> Set[str]:
        return {"p", "n", PID} | self.opaque_names

    def _opaque(self, node: ast.AST, floor: int = 0) -> VInt:
        text = ast.unparse(node)
        try:
            text = ast.unparse(ast.parse(text, mode="eval").body)
        except SyntaxError:
            pass
        if text in self.opaques:
            return VInt(Expr.sym(self.opaques[text].name))
        name = None
        if node is self._pending_node and self._pending_name:
            cand = self._pending_name
            if cand.isidentifier() and cand not in self._reserved():
                name = cand
        if name is None:
            name = f"v{len(self.opaques)}"
            while name in self._reserved():
                name += "_"
        sym = OpaqueSym(name=name, origin=text, floor=floor)
        self.opaques[text] = sym
        self.opaque_names.add(name)
        self.lower[name] = floor
        return VInt(Expr.sym(name))

    def _register_array(self, name: str, extent: Optional[Expr], layout: str = "blocked") -> ArrayInfo:
        if name in self.arrays:
            return self.arrays[name]
        block: Optional[Expr] = None
        if extent is not None:
            if layout == "root":
                block = extent
            else:
                q, r = extent.split_divisible(P)
                if not r.terms and self.base_ctx().prove_pos(q):
                    block = q  # extent divides exactly: block == extent/p
                else:
                    origin = f"-(-({extent.render()}) // p)"
                    prior = self.opaques.get(origin)
                    if prior is not None:
                        block = Expr.sym(prior.name)  # same extent: same block
                    else:
                        self._blocks += 1
                        bname = "blk" if self._blocks == 1 else f"blk{self._blocks}"
                        while bname in self._reserved():
                            bname += "_"
                        sym = OpaqueSym(
                            name=bname,
                            origin=origin,
                            floor=1,
                            derive_extent=extent,
                        )
                        self.opaques[origin] = sym
                        self.opaque_names.add(bname)
                        self.lower[bname] = 1
                        block = Expr.sym(bname)
                        # ceil semantics: p*blk >= extent, p*blk <= extent+p-1
                        self.conditions.append(P * block - extent)
                        self.conditions.append(extent + P - 1 - P * block)
        info = ArrayInfo(name=name, extent=extent, block=block, layout=layout)
        self.arrays[name] = info
        return info

    # -- proof contexts -------------------------------------------------
    def base_ctx(self) -> ProofContext:
        return ProofContext(
            lower_bounds=dict(self.lower),
            conditions=list(self.conditions),
            default_floor=0,
        )

    def pid_ctx(self) -> ProofContext:
        ctx = self.base_ctx()
        ctx.bounded[PID] = (ZERO, P - 1)
        return ctx

    def cur_ctx(self) -> ProofContext:
        return self.pid_ctx().with_guards(self.pguards + self.guards)

    # -- entry ----------------------------------------------------------
    def run(self) -> None:
        args = self.fn.args
        names = [a.arg for a in args.args + args.posonlyargs + args.kwonlyargs]
        for i, name in enumerate(names):
            if i == 0:
                self.env[name] = VObj("ctx")
            elif name in self.spec.arrays:
                self.env[name] = VArray(self._register_array(name, self.spec.arrays[name]))
            else:
                self.env[name] = VObj(name)
        self.exec_body(self.fn.body)
        if self.cur.accesses or self.cur.charges:
            self.sink.append(self.cur)
        self.cur = PhaseNode()

    # -- statements -----------------------------------------------------
    def exec_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if self.stopped:
                break
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if _is_sync_stmt(stmt):
            self._sync(stmt.lineno)
            return
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Yield):
                if value.value is not None:
                    self.eval(value.value)
                return
            self.eval(value)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self.exec_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self.exec_augassign(stmt)
        elif isinstance(stmt, ast.If):
            self.exec_if(stmt)
        elif isinstance(stmt, ast.For):
            self.exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self._note(f"line {stmt.lineno}: while loop analyzed once (unsupported trip count)")
            if _contains_sync(stmt.body):
                self._note(f"line {stmt.lineno}: sync inside while loop ignored")
                old = self.ignore_sync
                self.ignore_sync = True
                self._run_data_loop(stmt.body, None)
                self.ignore_sync = old
            else:
                self._run_data_loop(stmt.body, None)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
            self.stopped = True
        elif isinstance(stmt, ast.With):
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Pass, ast.Break, ast.Continue,
                               ast.Assert, ast.Delete, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal)):
            pass
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._note(f"line {stmt.lineno}: nested definition not analyzed")
        else:
            self._note(f"line {stmt.lineno}: unsupported statement {type(stmt).__name__}")

    def _note(self, msg: str) -> None:
        if self.record and msg not in self.notes:
            self.notes.append(msg)

    def _sync(self, line: int) -> None:
        if self.ignore_sync:
            return
        if self.guards:
            self._note(f"line {line}: sync under a condition breaks phase congruence")
            return
        self.cur.synced = True
        self.cur.sync_line = line
        self.sink.append(self.cur)
        self.cur = PhaseNode()

    # -- assignment -----------------------------------------------------
    def exec_assign(self, stmt) -> None:
        value_node = stmt.value
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if value_node is None:  # bare annotation
            return
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            self._pending_name = targets[0].id
            self._pending_node = value_node
        val = self.eval(value_node)
        self._pending_name = None
        self._pending_node = None
        for target in targets:
            self.assign_target(target, val, stmt.lineno)

    def assign_target(self, target: ast.expr, val: Any, line: int) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = val
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if isinstance(val, VTuple) and len(val.items) == len(elts):
                for t, v in zip(elts, val.items):
                    self.assign_target(t, v, line)
            else:
                for t in elts:
                    self.assign_target(t, VUNKNOWN, line)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            if isinstance(base, VLocal):
                self._local_write(base.info, target.slice, line)
            # stores into plain ndarrays/objects carry no shared state
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, VUNKNOWN, line)

    def exec_augassign(self, stmt: ast.AugAssign) -> None:
        self.eval(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Name):
            cur = self.env.get(target.id)
            if isinstance(cur, VLocal):
                self._local_write(cur.info, None, stmt.lineno)
            elif isinstance(cur, VInt) and isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult)):
                self.env[target.id] = VUNKNOWN
            else:
                self.env[target.id] = VUNKNOWN
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            if isinstance(base, VLocal):
                self._local_write(base.info, target.slice, stmt.lineno)

    def _local_write(self, info: ArrayInfo, slice_node: Optional[ast.expr], line: int) -> None:
        """Record a write through a ``ctx.local`` view as a global region."""
        if info.block is None:
            self._record("local_write", info, None, line, reason="unknown array extent")
            return
        offset = ZERO if info.layout == "root" else PIDE * info.block
        full = Region(base=offset, qvars=(QVar(self._fresh_qvar(), ONE, ZERO, info.block - 1),))
        region: Optional[Region] = full
        if slice_node is not None:
            if isinstance(slice_node, ast.Slice):
                lo = self.eval(slice_node.lower) if slice_node.lower else VInt(ZERO)
                hi = self.eval(slice_node.upper) if slice_node.upper else VInt(info.block)
                if slice_node.step is None and isinstance(lo, VInt) and isinstance(hi, VInt):
                    width = hi.expr - lo.expr
                    region = Region(
                        base=offset + lo.expr,
                        qvars=(QVar(self._fresh_qvar(), ONE, ZERO, width - 1),),
                    )
                else:
                    region = full  # over-approximate odd slices by the block
            else:
                idx = self.eval(slice_node)
                if isinstance(idx, VInt):
                    region = Region(base=offset + idx.expr)
                elif isinstance(idx, VRegion):
                    region = idx.region.shift(offset)
                else:
                    region = full  # data-dependent scatter: whole block
        self._record("local_write", info, region, line)

    # -- conditionals ---------------------------------------------------
    def exec_if(self, stmt: ast.If) -> None:
        decision, gt, gf = self.eval_cond(stmt.test)
        if decision == "true":
            self._exec_guarded(stmt.body, gt)
            return
        if decision == "false":
            self._exec_guarded(stmt.orelse, gf)
            return
        ends_t = bool(stmt.body) and isinstance(stmt.body[-1], (ast.Return, ast.Raise))
        ends_f = bool(stmt.orelse) and isinstance(stmt.orelse[-1], (ast.Return, ast.Raise))
        snapshot = dict(self.env)
        stopped0 = self.stopped
        self._exec_guarded(stmt.body, gt)
        env_t, stopped_t = self.env, self.stopped
        self.env, self.stopped = dict(snapshot), stopped0
        self._exec_guarded(stmt.orelse, gf)
        env_f, stopped_f = self.env, self.stopped
        ends_t = ends_t or stopped_t
        ends_f = ends_f or stopped_f
        if ends_t and ends_f:
            self.stopped = True
            return
        self.stopped = stopped0
        if ends_t:
            self.env = env_f
            self.pguards.extend(gf)
        elif ends_f:
            self.env = env_t
            self.pguards.extend(gt)
        else:
            merged: Dict[str, Any] = {}
            for key in set(env_t) | set(env_f):
                merged[key] = join(env_t.get(key), env_f.get(key))
            self.env = merged

    def _exec_guarded(self, body: Sequence[ast.stmt], guards: List[Guard]) -> None:
        if not body:
            return
        if _contains_sync(body):
            self._note(
                f"line {body[0].lineno}: sync under a condition breaks phase congruence"
            )
        self.guards.extend(guards)
        try:
            self.exec_body(body)
        finally:
            del self.guards[len(self.guards) - len(guards):]

    def eval_cond(self, test: ast.expr) -> Tuple[str, List[Guard], List[Guard]]:
        """Evaluate a branch condition -> (decision, true-guards, false-guards)."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            dec, gt, gf = self.eval_cond(test.operand)
            flip = {"true": "false", "false": "true", "both": "both"}[dec]
            return flip, gf, gt
        if isinstance(test, ast.BoolOp):
            decs, gts, gfs = [], [], []
            for sub in test.values:
                d, t, f = self.eval_cond(sub)
                decs.append(d)
                gts.extend(t)
                gfs.extend(f)
            if isinstance(test.op, ast.And):
                if all(d == "true" for d in decs):
                    return "true", gts, []
                if any(d == "false" for d in decs):
                    return "false", [], []
                return "both", gts, []
            if all(d == "false" for d in decs):
                return "false", [], gfs
            if any(d == "true" for d in decs):
                return "true", [], []
            return "both", [], gfs
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            op = test.ops[0]
            left = self.eval(test.left)
            right = self.eval(test.comparators[0])
            if isinstance(op, (ast.Is, ast.IsNot)):
                is_none = (
                    isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value is None
                )
                if is_none and left is VNONE:
                    return ("true", [], []) if isinstance(op, ast.Is) else ("false", [], [])
                return "both", [], []
            if isinstance(left, VInt) and isinstance(right, VInt):
                a, b = left.expr, right.expr
                if isinstance(op, ast.Lt):
                    gt, gf = [Guard(b - a - 1, "ge0")], [Guard(a - b, "ge0")]
                elif isinstance(op, ast.LtE):
                    gt, gf = [Guard(b - a, "ge0")], [Guard(a - b - 1, "ge0")]
                elif isinstance(op, ast.Gt):
                    gt, gf = [Guard(a - b - 1, "ge0")], [Guard(b - a, "ge0")]
                elif isinstance(op, ast.GtE):
                    gt, gf = [Guard(a - b, "ge0")], [Guard(b - a - 1, "ge0")]
                elif isinstance(op, ast.Eq):
                    gt, gf = [Guard(a - b, "eq0")], []
                elif isinstance(op, ast.NotEq):
                    gt, gf = [], [Guard(a - b, "eq0")]
                else:
                    return "both", [], []
                ctx = self.cur_ctx()
                diff = a - b
                if isinstance(op, ast.Eq) and not diff.terms:
                    return "true", gt, gf
                if gt and gt[0].op == "ge0" and ctx.prove_nonneg(gt[0].expr):
                    return "true", gt, gf
                if gf and gf[0].op == "ge0" and ctx.prove_nonneg(gf[0].expr):
                    return "false", gt, gf
                return "both", gt, gf
            return "both", [], []
        val = self.eval(test)
        if isinstance(val, VInt):
            ctx = self.cur_ctx()
            if ctx.prove_pos(val.expr):
                return "true", [], []
            if not val.expr.terms:
                return "false", [], []
            return "both", [Guard(val.expr - 1, "ge0")], [Guard(-val.expr, "ge0")]
        if isinstance(val, VRegion):
            cnt = val.region.count()
            if self.cur_ctx().prove_pos(cnt):
                return "true", [], []
            return "both", [], []
        if val is VNONE:
            return "false", [], []
        return "both", [], []

    # -- loops ----------------------------------------------------------
    def exec_for(self, stmt: ast.For) -> None:
        count, var, order = self._loop_iter(stmt.iter)
        if not _contains_sync(stmt.body):
            self._bind_loop_targets(stmt.target)
            self._run_data_loop(stmt.body, count)
            return
        # Syncful loop: every iteration contributes its own phases.
        if self.guards:
            self._note(f"line {stmt.lineno}: loop with sync under a condition")
        entry_env = dict(self.env)
        # Pass 1: reach an environment fixpoint without recording.
        rec0, sink0, cur0 = self.record, self.sink, self.cur
        self.record = False
        self.sink, self.cur = [], PhaseNode()
        self._bind_loop_targets(stmt.target)
        self.exec_body(stmt.body)
        env1 = self.env
        merged: Dict[str, Any] = {}
        for key in set(entry_env) | set(env1):
            merged[key] = join(entry_env.get(key), env1.get(key))
        self.env = merged
        self.record, self.sink, self.cur = rec0, sink0, cur0
        # Pass 2: record one symbolic iteration under the joined env.
        preload = self.cur
        body_sink: List[Any] = []
        self.sink, self.cur = body_sink, PhaseNode()
        self._bind_loop_targets(stmt.target)
        self.exec_body(stmt.body)
        trailing = self.cur
        self.sink = sink0
        if trailing.accesses or trailing.charges:
            self._note(
                f"line {stmt.lineno}: loop body does not end at a phase boundary; "
                "its tail is folded into the first phase"
            )
            if body_sink and isinstance(body_sink[0], PhaseNode):
                body_sink[0].accesses.extend(trailing.accesses)
                body_sink[0].charges.extend(trailing.charges)
        if body_sink:
            first = body_sink[0]
            if isinstance(first, PhaseNode) and (preload.accesses or preload.charges):
                first.accesses[:0] = preload.accesses
                first.charges[:0] = preload.charges
            else:
                body_sink[:0] = [preload] if (preload.accesses or preload.charges) else []
            self.sink.append(LoopNode(count=count, var=var, order=order,
                                      body=body_sink, line=stmt.lineno))
            self.cur = PhaseNode()
            if trailing.accesses or trailing.charges:
                self.cur = PhaseNode(
                    accesses=list(trailing.accesses), charges=list(trailing.charges)
                )
        else:
            self.cur = preload
            for acc in trailing.accesses:
                self.cur.accesses.append(acc)
            self.cur.charges.extend(trailing.charges)

    def _run_data_loop(self, body: Sequence[ast.stmt], count: Optional[Expr]) -> None:
        self.mults.append(count)
        try:
            self.exec_body(body)
        finally:
            self.mults.pop()

    def _bind_loop_targets(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = VUNKNOWN
        elif isinstance(target, (ast.Tuple, ast.List)):
            for t in target.elts:
                self._bind_loop_targets(t)

    def _loop_iter(self, node: ast.expr) -> Tuple[Optional[Expr], Optional[str], str]:
        order = "fwd"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "reversed"
            and node.args
        ):
            order = "rev"
            node = node.args[0]
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"
            and not node.keywords
        ):
            args = [self.eval(a) for a in node.args]
            if len(args) == 1 and isinstance(args[0], VInt):
                return args[0].expr, None, order
            if len(args) == 2 and all(isinstance(a, VInt) for a in args):
                return args[1].expr - args[0].expr, None, order
            return None, None, order
        self.eval(node)
        return None, None, order

    # -- expressions ----------------------------------------------------
    def eval(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return VInt(ONE if node.value else ZERO)
            if isinstance(node.value, int):
                return VInt(Expr.const(node.value))
            if node.value is None:
                return VNONE
            return VUNKNOWN
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return VObj(node.id)
        if isinstance(node, ast.Attribute):
            return self.eval_attr(node)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            val = self.eval(node.operand)
            if isinstance(node.op, ast.USub) and isinstance(val, VInt):
                return VInt(-val.expr)
            if isinstance(node.op, ast.UAdd) and isinstance(val, VInt):
                return val
            return VUNKNOWN
        if isinstance(node, ast.Compare):
            return self.eval_compare(node)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node)
        if isinstance(node, ast.List):
            items = [self.eval(e) for e in node.elts]
            if len(items) == 1 and isinstance(items[0], VInt):
                return VRegion(Region(base=items[0].expr))
            out = VList()
            for it in items:
                out.item = join(out.item, it)
            return out
        if isinstance(node, ast.Tuple):
            return VTuple(tuple(self.eval(e) for e in node.elts))
        if isinstance(node, ast.ListComp):
            return self.eval_listcomp(node)
        if isinstance(node, ast.IfExp):
            self.eval_cond(node.test)
            t = self.eval(node.body)
            f = self.eval(node.orelse)
            return join(t, f)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value)
            return VUNKNOWN
        if isinstance(node, (ast.GeneratorExp, ast.SetComp, ast.DictComp)):
            return VUNKNOWN
        if isinstance(node, ast.Starred):
            self.eval(node.value)
            return VUNKNOWN
        if isinstance(node, ast.BoolOp):
            for sub in node.values:
                self.eval(sub)
            return VUNKNOWN
        return VUNKNOWN

    def eval_attr(self, node: ast.Attribute) -> Any:
        val = self.eval(node.value)
        attr = node.attr
        if isinstance(val, VObj):
            if val.name == "ctx":
                if attr == "p":
                    return VInt(P)
                if attr == "pid":
                    return VInt(PIDE)
            return VObj(f"{val.name}.{attr}")
        if isinstance(val, (VArray, VAllocRef)):
            if attr == "array":
                return VArray(val.info)
            if attr in ("n", "size") and val.info.extent is not None:
                return VInt(val.info.extent)
            return VUNKNOWN
        if isinstance(val, VRegion):
            if attr == "size":
                return VInt(val.region.count())
            return VUNKNOWN
        return VUNKNOWN

    def eval_binop(self, node: ast.BinOp) -> Any:
        if isinstance(node.op, ast.LShift):
            left = self.eval(node.left)
            right = self.eval(node.right)
            if (
                isinstance(left, VInt)
                and isinstance(right, VInt)
                and left.expr.is_const
                and right.expr.is_const
            ):
                return VInt(Expr.const(left.expr.const_value << right.expr.const_value))
            floor = 1 if isinstance(left, VInt) and left.expr.is_const and left.expr.const_value >= 1 else 0
            return self._opaque(node, floor=floor)
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(left, VInt) and isinstance(right, VInt):
            if isinstance(node.op, ast.Add):
                return VInt(left.expr + right.expr)
            if isinstance(node.op, ast.Sub):
                return VInt(left.expr - right.expr)
            if isinstance(node.op, ast.Mult):
                return VInt(left.expr * right.expr)
            return VUNKNOWN
        if isinstance(left, VRegion) and isinstance(right, VInt):
            if isinstance(node.op, ast.Add):
                return VRegion(left.region.shift(right.expr))
            if isinstance(node.op, ast.Sub):
                return VRegion(left.region.shift(-right.expr))
            if isinstance(node.op, ast.Mult):
                return VRegion(left.region.scale(right.expr))
            return VUNKNOWN
        if isinstance(left, VInt) and isinstance(right, VRegion):
            if isinstance(node.op, ast.Add):
                return VRegion(right.region.shift(left.expr))
            if isinstance(node.op, ast.Mult):
                return VRegion(right.region.scale(left.expr))
            return VUNKNOWN
        if isinstance(left, VRegion) and isinstance(right, VRegion):
            if isinstance(node.op, ast.Add):
                names1 = {v.name for v in left.region.qvars}
                if names1.isdisjoint({v.name for v in right.region.qvars}):
                    return VRegion(left.region.merge(right.region))
            return VUNKNOWN
        return VUNKNOWN

    def eval_compare(self, node: ast.Compare) -> Any:
        left = self.eval(node.left)
        rights = [self.eval(c) for c in node.comparators]
        if (
            len(node.ops) == 1
            and isinstance(node.ops[0], ast.NotEq)
            and isinstance(left, VRegion)
            and isinstance(rights[0], VInt)
        ):
            region = left.region
            if (
                len(region.qvars) == 1
                and not region.base.terms
                and region.qvars[0].coeff == ONE
                and region.qvars[0].exclude is None
            ):
                return VMask(region=region, exclude=rights[0].expr)
        return VUNKNOWN

    def eval_listcomp(self, node: ast.ListComp) -> Any:
        if len(node.generators) != 1:
            return VUNKNOWN
        gen = node.generators[0]
        if not isinstance(gen.target, ast.Name) or gen.is_async:
            return VUNKNOWN
        count_lo: Optional[Expr] = None
        count_hi: Optional[Expr] = None
        it = gen.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and not it.keywords
        ):
            args = [self.eval(a) for a in it.args]
            if len(args) == 1 and isinstance(args[0], VInt):
                count_lo, count_hi = ZERO, args[0].expr - 1
            elif len(args) == 2 and all(isinstance(a, VInt) for a in args):
                count_lo, count_hi = args[0].expr, args[1].expr - 1
        if count_lo is None or count_hi is None:
            return VUNKNOWN
        qname = self._fresh_qvar()
        saved = self.env.get(gen.target.id)
        self.env[gen.target.id] = VInt(Expr.sym(qname))
        try:
            elt = self.eval(node.elt)
            exclude: Optional[Expr] = None
            if gen.ifs:
                if len(gen.ifs) != 1:
                    return VUNKNOWN
                cond = gen.ifs[0]
                if not (
                    isinstance(cond, ast.Compare)
                    and len(cond.ops) == 1
                    and isinstance(cond.ops[0], ast.NotEq)
                ):
                    return VUNKNOWN
                lhs = self.eval(cond.left)
                rhs = self.eval(cond.comparators[0])
                if not (isinstance(lhs, VInt) and isinstance(rhs, VInt)):
                    return VUNKNOWN
                if lhs.expr == Expr.sym(qname):
                    exclude = rhs.expr
                elif rhs.expr == Expr.sym(qname):
                    exclude = lhs.expr
                else:
                    return VUNKNOWN
        finally:
            if saved is None:
                self.env.pop(gen.target.id, None)
            else:
                self.env[gen.target.id] = saved
        if not isinstance(elt, VInt):
            return VUNKNOWN
        e = elt.expr
        if e.degree_in(qname) > 1:
            return VUNKNOWN
        coeff = e.coeff_of(qname)
        if coeff is None:
            return VUNKNOWN
        rest = e.drop(qname)
        # Normalize the quantifier to start at 0.
        base = rest + coeff * count_lo
        width = count_hi - count_lo
        excl = None if exclude is None else exclude - count_lo
        return VRegion(
            Region(base=base, qvars=(QVar(qname, coeff, ZERO, width, excl),))
        )

    # -- calls ----------------------------------------------------------
    def eval_call(self, node: ast.Call) -> Any:
        func = node.func
        args = [self.eval(a) for a in node.args]
        kwargs = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value)
            meth = func.attr
            if isinstance(recv, VObj) and recv.name == "ctx":
                return self.eval_ctx_call(node, meth, args, kwargs)
            if isinstance(recv, VObj) and (recv.name == "np" or recv.name.startswith("np.")):
                return self.eval_np_call(node, meth, args, kwargs)
            if isinstance(recv, (VArray, VAllocRef)):
                if meth == "local_offset" and args and isinstance(args[0], VInt):
                    if recv.info.block is not None:
                        offset = ZERO if recv.info.layout == "root" else args[0].expr * recv.info.block
                        return VInt(offset)
                    return VUNKNOWN
                if meth == "local_view":
                    return VLocal(recv.info)
                return VUNKNOWN
            if isinstance(recv, VRegion):
                if meth in ("ravel", "astype", "copy", "reshape", "flatten", "tolist"):
                    return recv
                return VUNKNOWN
            if isinstance(recv, VList):
                if meth == "append" and args:
                    recv.item = join(recv.item, args[0])
                    return VNONE
                return VUNKNOWN
            if isinstance(recv, VObj) and not recv.name.startswith(("ctx", "np")):
                # Stable parameter-object derived scalar (params.iterations(p), ...)
                return self._opaque(node, floor=0)
            return VUNKNOWN
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("int", "abs", "round"):
                return args[0] if args and isinstance(args[0], VInt) else VUNKNOWN
            if name == "len":
                if args and isinstance(args[0], VLocal) and args[0].info.block is not None:
                    return VInt(args[0].info.block)
                if args and isinstance(args[0], VRegion):
                    return VInt(args[0].region.count())
                if args and isinstance(args[0], (VArray, VAllocRef)) and args[0].info.extent is not None:
                    return VInt(args[0].info.extent)
                return VUNKNOWN
            if name in ("max", "min") and len(args) == 2:
                a, b = args
                if isinstance(a, VInt) and isinstance(b, VInt):
                    ctx = self.cur_ctx()
                    if ctx.prove_nonneg(a.expr - b.expr):
                        return a if name == "max" else b
                    if ctx.prove_nonneg(b.expr - a.expr):
                        return b if name == "max" else a
                return VUNKNOWN
            if name == "log2ceil":
                return self._opaque(node, floor=0)
            return VUNKNOWN
        return VUNKNOWN

    def eval_ctx_call(self, node: ast.Call, meth: str, args: List[Any], kwargs: Dict[str, Any]) -> Any:
        line = node.lineno
        if meth == "local":
            if args and isinstance(args[0], (VArray, VAllocRef)):
                return VLocal(args[0].info)
            return VUNKNOWN
        if meth == "local_offset":
            if args and isinstance(args[0], (VArray, VAllocRef)) and args[0].info.block is not None:
                info = args[0].info
                return VInt(ZERO if info.layout == "root" else PIDE * info.block)
            return VUNKNOWN
        if meth in ("get", "put"):
            info = args[0].info if args and isinstance(args[0], (VArray, VAllocRef)) else None
            region, reason = self._as_region(args[1] if len(args) > 1 else VUNKNOWN)
            self._record("get" if meth == "get" else "put", info, region, line, reason=reason)
            return VUNKNOWN
        if meth in ("get_range", "put_range"):
            info = args[0].info if args and isinstance(args[0], (VArray, VAllocRef)) else None
            start = args[1] if len(args) > 1 else VUNKNOWN
            region: Optional[Region] = None
            reason = "data-dependent start or count"
            if meth == "get_range":
                cnt = args[2] if len(args) > 2 else VUNKNOWN
                if isinstance(start, VInt) and isinstance(cnt, VInt):
                    region = Region(
                        base=start.expr,
                        qvars=(QVar(self._fresh_qvar(), ONE, ZERO, cnt.expr - 1),),
                    )
                    reason = ""
            else:
                values = args[2] if len(args) > 2 else VUNKNOWN
                if isinstance(start, VInt) and isinstance(values, VRegion):
                    cnt = values.region.count()
                    region = Region(
                        base=start.expr,
                        qvars=(QVar(self._fresh_qvar(), ONE, ZERO, cnt - 1),),
                    )
                    reason = ""
            self._record("get" if meth == "get_range" else "put", info, region, line, reason=reason)
            return VUNKNOWN
        if meth == "alloc":
            lit = node.args[0] if node.args else None
            aname = lit.value if isinstance(lit, ast.Constant) and isinstance(lit.value, str) else None
            if aname is None:
                aname = self._pending_name or f"alloc@{line}"
            extent = args[1].expr if len(args) > 1 and isinstance(args[1], VInt) else None
            layout = "blocked"
            for kw in node.keywords:
                if kw.arg == "layout" and "ROOT" in ast.unparse(kw.value):
                    layout = "root"
            return VAllocRef(self._register_array(aname, extent, layout))
        if meth in ("charge", "charge_cycles"):
            if self.record and node.args:
                self.cur.charges.append(ast.unparse(node.args[0]))
            return VUNKNOWN
        if meth in ("observe", "free", "sync"):
            return VUNKNOWN
        return VUNKNOWN

    def eval_np_call(self, node: ast.Call, meth: str, args: List[Any], kwargs: Dict[str, Any]) -> Any:
        if meth == "arange":
            if len(args) == 1 and isinstance(args[0], VInt):
                return VRegion(Region(qvars=(QVar(self._fresh_qvar(), ONE, ZERO, args[0].expr - 1),)))
            if len(args) == 2 and all(isinstance(a, VInt) for a in args):
                lo, hi = args[0].expr, args[1].expr
                return VRegion(
                    Region(base=lo, qvars=(QVar(self._fresh_qvar(), ONE, ZERO, hi - lo - 1),))
                )
            return VUNKNOWN
        if meth in ("array", "asarray"):
            if args and isinstance(args[0], (VRegion, VMask)):
                return args[0]
            return VUNKNOWN
        if meth in ("cumsum", "add", "multiply", "subtract"):
            out = kwargs.get("out")
            if isinstance(out, VLocal):
                self._local_write(out.info, None, node.lineno)
            return VUNKNOWN
        return VUNKNOWN

    def eval_subscript(self, node: ast.Subscript) -> Any:
        value = self.eval(node.value)
        sl = node.slice
        if isinstance(value, VLocal):
            if not isinstance(sl, ast.Slice):
                self.eval(sl)
            return VUNKNOWN  # local *read*: plain node-local data
        if isinstance(value, VRegion):
            if (
                isinstance(sl, ast.Tuple)
                and len(sl.elts) == 2
                and isinstance(sl.elts[1], ast.Constant)
                and sl.elts[1].value is None
            ):
                return value  # x[:, None]: reshape only
            if isinstance(sl, ast.Slice):
                return VUNKNOWN
            idx = self.eval(sl)
            if isinstance(idx, VMask):
                return self._apply_mask(value, idx)
            return VUNKNOWN
        if isinstance(value, VList):
            if not isinstance(sl, ast.Slice):
                self.eval(sl)
            return value.item if value.item is not None else VUNKNOWN
        if isinstance(value, VTuple):
            if isinstance(sl, ast.Constant) and isinstance(sl.value, int):
                try:
                    return value.items[sl.value]
                except IndexError:
                    return VUNKNOWN
            out = None
            for it in value.items:
                out = join(out, it)
            return out if out is not None else VUNKNOWN
        if not isinstance(sl, ast.Slice):
            self.eval(sl)
        return VUNKNOWN

    def _apply_mask(self, value: VRegion, mask: VMask) -> Any:
        region = value.region
        mvar = mask.region.qvars[0]
        if len(region.qvars) != 1:
            return VUNKNOWN
        qv = region.qvars[0]
        if qv.lo == mvar.lo and qv.hi == mvar.hi and qv.exclude is None:
            new = QVar(qv.name, qv.coeff, qv.lo, qv.hi, mask.exclude)
            return VRegion(Region(base=region.base, qvars=(new,)))
        return VUNKNOWN

    def _as_region(self, val: Any) -> Tuple[Optional[Region], str]:
        if isinstance(val, VRegion):
            return val.region, ""
        if isinstance(val, VInt):
            return Region(base=val.expr), ""
        return None, "index expression is not statically affine"

    def _record(self, kind: str, info: Optional[ArrayInfo], region: Optional[Region],
                line: int, reason: str = "") -> None:
        if not self.record:
            return
        mult: Optional[Expr] = ONE
        for m in self.mults:
            mult = None if (mult is None or m is None) else mult * m
        if region is None and not reason:
            reason = "index expression is not statically affine"
        self.cur.accesses.append(
            Access(
                kind=kind,
                array=info.name if info else "?",
                info=info,
                region=region,
                guards=tuple(self.pguards + self.guards),
                line=line,
                origin=f"{self.relpath}:{line}",
                reason=reason,
                multiplier=mult,
            )
        )


# ----------------------------------------------------------------------
# Pinned-pid substitution
# ----------------------------------------------------------------------
def _subst_region(region: Region, name: str, value: Expr) -> Region:
    return Region(
        base=region.base.subst(name, value),
        qvars=tuple(
            QVar(
                v.name,
                v.coeff.subst(name, value),
                v.lo.subst(name, value),
                v.hi.subst(name, value),
                None if v.exclude is None else v.exclude.subst(name, value),
            )
            for v in region.qvars
        ),
    )


def _pinned_const(guards: Sequence[Guard]) -> Optional[int]:
    for g in guards:
        c = g.pinned_pid()
        if c is not None:
            return c
    return None


def _pin(region: Region, guards: Sequence[Guard]):
    """Substitute a guard-pinned ``pid == c`` into region and guards.

    Corner expansion over an ``eq0``-pinned pid is lossy (the prover
    would range it over ``[0, p-1]``), so the constant is folded in
    before any disjointness/bounds obligation.  Returns
    ``(region, guards, pin)``; ``None`` if a guard becomes constantly
    false (dead branch -> obligation vacuous).
    """
    c = _pinned_const(guards)
    if c is None:
        return region, tuple(guards), None
    ce = Expr.const(c)
    out: List[Guard] = []
    for g in guards:
        e = g.expr.subst(PID, ce)
        if e.is_const:
            v = e.const_value
            if (g.op == "eq0" and v != 0) or (g.op == "ge0" and v < 0):
                return None
            continue
        out.append(Guard(e, g.op))
    return _subst_region(region, PID, ce), tuple(out), c


# ----------------------------------------------------------------------
# Flattened phases and the findings engine
# ----------------------------------------------------------------------
@dataclass
class FlatPhase:
    """One phase of the flattened tree (loop bodies appear once)."""

    index: int
    node: PhaseNode
    mult: Optional[Expr]  # how many times the phase repeats (loop nesting)
    kappa: Optional[Expr] = None


@dataclass
class ProgramReport:
    """Everything the analyzer derived about one SPMD program."""

    name: str
    path: str
    line: int
    algo: Optional[str]
    phases: List[FlatPhase]
    findings: List[Diagnostic]
    notes: List[str]
    profile: Dict[str, Optional[Expr]]
    opaques: Dict[str, OpaqueSym]
    crosscheck: Optional[Dict[str, str]] = None
    analyzer: Optional[ProgramAnalyzer] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.findings if d.severity == "error"]


_WITNESS_CELL_CAP = 4096


class _Engine:
    """Turn one analyzed program into findings + a symbolic profile."""

    def __init__(self, an: ProgramAnalyzer) -> None:
        self.an = an
        self.findings: List[Diagnostic] = []
        self._noted: Set[Tuple[str, str]] = set()

    # -- witness machinery ---------------------------------------------
    def _witness_envs(self) -> Iterable[Dict[str, int]]:
        free = [s for s in self.an.opaques.values() if s.derive_extent is None]
        blks = [s for s in self.an.opaques.values() if s.derive_extent is not None]
        for p in (2, 3, 4):
            for n in (p, 2 * p, p * p, 3 * p + 1):
                ranges = [range(s.floor, s.floor + 3) for s in free]
                for combo in itertools.product(*ranges):
                    env = {"p": p, "n": n}
                    env.update({s.name: v for s, v in zip(free, combo)})
                    ok = True
                    for s in blks:
                        try:
                            ext = s.derive_extent.evaluate(env)
                        except Exception:
                            ok = False
                            break
                        env[s.name] = -(-ext // p)
                    if not ok:
                        continue
                    try:
                        if any(c.evaluate(env) < 0 for c in self.an.conditions):
                            continue
                    except Exception:
                        continue
                    yield env

    @staticmethod
    def _guards_hold(guards: Sequence[Guard], env: Dict[str, int], pid: int) -> bool:
        e = dict(env)
        e[PID] = pid
        for g in guards:
            try:
                v = g.expr.evaluate(e)
            except Exception:
                return False  # can't certify the branch is taken
            if (g.op == "eq0" and v != 0) or (g.op == "ge0" and v < 0):
                return False
        return True

    @staticmethod
    def _cells(region: Region, env: Dict[str, int], pid: int) -> Optional[Set[int]]:
        e = dict(env)
        e[PID] = pid
        out: Set[int] = set()
        try:
            base = region.base.evaluate(e)
            spans = []
            for v in region.qvars:
                lo, hi = v.lo.evaluate(e), v.hi.evaluate(e)
                co = v.coeff.evaluate(e)
                ex = None if v.exclude is None else v.exclude.evaluate(e)
                vals = [x for x in range(lo, hi + 1) if x != ex]
                spans.append([co * x for x in vals])
            total = 1
            for s in spans:
                total *= max(len(s), 1)
                if total > _WITNESS_CELL_CAP:
                    return None
            for combo in itertools.product(*spans):
                out.add(base + sum(combo))
            return out
        except Exception:
            return None

    def _witness_overlap(self, a: "Access", b: "Access", cross: bool):
        """Search small configs for a concrete overlapping pair."""
        for env in self._witness_envs():
            p = env["p"]
            for pa in range(p):
                if not self._guards_hold(a.guards, env, pa):
                    continue
                ca = self._cells(a.region, env, pa)
                if not ca:
                    continue
                pbs = [x for x in range(p) if x != pa] if cross else [pa]
                for pb in pbs:
                    if not cross and a is b:
                        break
                    if not self._guards_hold(b.guards, env, pb):
                        continue
                    cb = self._cells(b.region, env, pb)
                    if not cb:
                        continue
                    inter = ca & cb
                    if inter:
                        return env, pa, pb, tuple(sorted(inter)[:4])
        return None

    def _witness_oob(self, acc: "Access", extent: Expr):
        for env in self._witness_envs():
            try:
                ext = extent.evaluate(env)
            except Exception:
                continue
            for pid in range(env["p"]):
                if not self._guards_hold(acc.guards, env, pid):
                    continue
                cells = self._cells(acc.region, env, pid)
                if not cells:
                    continue
                bad = sorted(c for c in cells if c < 0 or c >= ext)
                if bad:
                    return env, pid, tuple(bad[:4])
        return None

    # -- diagnostics ----------------------------------------------------
    def _emit(self, code: str, severity: str, message: str, phase: Optional[int],
              array: Optional[str], origins: Sequence[str],
              pids: Sequence[int] = (), cells=None) -> None:
        self.findings.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                phase=phase,
                array=array,
                cells=cells,
                pids=tuple(pids),
                origins=tuple(origins),
                tool="phases",
            )
        )

    def _note_once(self, key: Tuple[str, str], code: str, message: str,
                   phase: Optional[int], array: Optional[str],
                   origins: Sequence[str]) -> None:
        if key in self._noted:
            return
        self._noted.add(key)
        self._emit(code, "note", message, phase, array, origins)

    @staticmethod
    def _env_str(env: Dict[str, int]) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(env.items()))

    # -- proof obligations ----------------------------------------------
    def _cross_disjoint(self, a: "Access", b: "Access") -> bool:
        pa = _pin(a.region, a.guards)
        pb = _pin(b.region, b.guards)
        if pa is None or pb is None:
            return True  # dead branch
        ra, ga, ca = pa
        rb, gb, cb = pb
        if ca is not None and cb is not None:
            return True if ca == cb else cross_pid_disjoint(ra, ga, rb, gb, self.an.base_ctx())
        return cross_pid_disjoint(ra, ga, rb, gb, self.an.base_ctx())

    def _same_disjoint(self, a: "Access", b: "Access") -> bool:
        ca, cb = _pinned_const(a.guards), _pinned_const(b.guards)
        if ca is not None and cb is not None and ca != cb:
            return True  # never the same processor
        pin = ca if ca is not None else cb
        ra, ga = a.region, list(a.guards)
        rb, gb = b.region, list(b.guards)
        if pin is not None:
            pa = _pin(ra, tuple(ga) + (Guard(PIDE - Expr.const(pin), "eq0"),))
            pb = _pin(rb, tuple(gb) + (Guard(PIDE - Expr.const(pin), "eq0"),))
            if pa is None or pb is None:
                return True
            ra, ga, _ = pa
            rb, gb, _ = pb
        return same_pid_disjoint(ra, ga, rb, gb, self.an.base_ctx())

    def _check_unknown(self, acc: "Access", phase: int) -> bool:
        """Record a QSA005 note for a non-affine access; True if unknown."""
        if acc.region is not None:
            return False
        self._note_once(
            (acc.origin, acc.kind),
            "QSA005",
            f"{acc.kind} on '{acc.array}' deferred to the runtime sanitizer: "
            f"{acc.reason or 'index expression is not statically affine'}",
            phase,
            acc.array,
            [acc.origin],
        )
        return True

    def _check_bounds(self, acc: "Access", phase: int) -> None:
        if acc.region is None or acc.info is None or acc.info.extent is None:
            return
        pinned = _pin(acc.region, acc.guards)
        if pinned is None:
            return
        region, guards, _ = pinned
        ctx = self.an.pid_ctx().with_guards(guards)
        if region_within(region, acc.info.extent, ctx):
            return
        wit = self._witness_oob(acc, acc.info.extent)
        if wit is not None:
            env, pid, cells = wit
            self._emit(
                "QSA004",
                "error",
                f"{acc.kind} region {acc.region.render()} escapes array "
                f"'{acc.array}' (extent {acc.info.extent.render()}); "
                f"witness {self._env_str(env)}, pid {pid}, cells {list(cells)}",
                phase,
                acc.array,
                [acc.origin],
                pids=(pid,),
                cells=cells,
            )
        else:
            self._note_once(
                (acc.origin, "bounds"),
                "QSA005",
                f"could not prove {acc.kind} region {acc.region.render()} stays "
                f"within '{acc.array}' (extent {acc.info.extent.render()}); "
                "deferred to the runtime sanitizer",
                phase,
                acc.array,
                [acc.origin],
            )

    def _line_disabled(self, code: str, origins: Sequence[str]) -> bool:
        for origin in origins:
            try:
                line = int(origin.rsplit(":", 1)[1])
            except (IndexError, ValueError):
                continue
            if code in self.an.suppress.get(line, set()):
                return True
        return False

    def _check_pair(self, code: str, a: "Access", b: "Access", cross: bool,
                    phase: int, what: str) -> None:
        if a.region is None or b.region is None:
            return
        if self._line_disabled(code, (a.origin, b.origin)):
            return  # the obligation itself is disabled at the source line
        proven = self._cross_disjoint(a, b) if cross else self._same_disjoint(a, b)
        if proven:
            return
        wit = self._witness_overlap(a, b, cross)
        origins = [a.origin] if a is b else [a.origin, b.origin]
        if wit is not None:
            env, pa, pb, cells = wit
            self._emit(
                code,
                "error",
                f"{what} on '{a.array}': {a.region.render()} vs "
                f"{b.region.render()}; witness {self._env_str(env)}, "
                f"pids {pa}/{pb}, cells {list(cells)}",
                phase,
                a.array,
                origins,
                pids=(pa, pb),
                cells=cells,
            )
        else:
            self._note_once(
                (f"{a.origin}|{b.origin}", code),
                "QSA005",
                f"undecided {what} on '{a.array}': {a.region.render()} vs "
                f"{b.region.render()}; deferred to the runtime sanitizer",
                phase,
                a.array,
                origins,
            )

    # -- per-phase safety -----------------------------------------------
    def _check_phase(self, fp: FlatPhase) -> None:
        by_array: Dict[str, List[Access]] = {}
        for acc in fp.node.accesses:
            if self._check_unknown(acc, fp.index):
                continue
            if acc.kind in ("put", "get"):
                self._check_bounds(acc, fp.index)
            key = acc.info.name if acc.info else f"?@{acc.line}"
            by_array.setdefault(key, []).append(acc)
        for accs in by_array.values():
            writes = [a for a in accs if a.kind in ("put", "local_write")]
            gets = [a for a in accs if a.kind == "get"]
            for i, a in enumerate(writes):
                for b in writes[i:]:
                    if (
                        a.kind == "local_write"
                        and b.kind == "local_write"
                        and a.info is not None
                        and a.info.layout == "blocked"
                    ):
                        continue  # own-block by construction
                    self._check_pair(
                        "QSA001", a, b, True, fp.index,
                        "cross-pid write-write overlap",
                    )
            for g in gets:
                for w in writes:
                    self._check_pair(
                        "QSA002", g, w, True, fp.index,
                        "same-phase read of a remotely written region",
                    )
                    if w.kind == "put":
                        self._check_pair(
                            "QSA002", g, w, False, fp.index,
                            "same-phase read of a region written by the same pid",
                        )

    # -- contention ------------------------------------------------------
    def _phase_kappa(self, fp: FlatPhase) -> Optional[Expr]:
        queued = [a for a in fp.node.accesses if a.kind in ("put", "get")]
        if not queued:
            return ZERO
        if any(a.region is None for a in queued):
            return None
        if any(a.multiplier is None or a.multiplier != ONE for a in queued):
            return None  # data-loop enqueues: per-cell multiplicity unknown
        prepped = [_pin(a.region, a.guards) for a in queued]
        if any(p is None for p in prepped):
            prepped = [p for p in prepped if p is not None]
            if not prepped:
                return ZERO
        ctx = self.an.base_ctx()

        def injective(a: "Access") -> bool:
            pa = _pin(a.region, a.guards)
            if pa is None:
                return True
            region, guards, _ = pa
            return region_injective(region, self.an.pid_ctx().with_guards(guards))

        if all(injective(a) for a in queued):
            slotted = True
            for i, a in enumerate(queued):
                for b in queued[i:]:
                    if not self._cross_disjoint(a, b):
                        slotted = False
                        break
                    if b is not a and not self._same_disjoint(a, b):
                        slotted = False
                        break
                if not slotted:
                    break
            if slotted:
                return ONE
            if len(queued) == 1:
                a = queued[0]
                pa = _pin(a.region, a.guards)
                if pa is not None and pa[2] is None and PID not in a.region.value_expr().symbols():
                    ok = all(
                        PID not in g.expr.symbols() for g in a.guards
                    )
                    if ok:
                        return P  # every pid issues the same slots
        return None

    def _check_kappa(self, fp: FlatPhase) -> None:
        declared = self.an.spec.kappa
        if declared is None or fp.kappa is None:
            return
        if self.an.base_ctx().prove_nonneg(fp.kappa - declared - ONE):
            origins = sorted(
                {a.origin for a in fp.node.accesses if a.kind in ("put", "get")}
            )
            self._emit(
                "QSA003",
                "error",
                f"symbolic contention kappa = {fp.kappa.render()} exceeds the "
                f"declared bound kappa = {declared.render()}",
                fp.index,
                None,
                origins,
            )

    # -- totals ----------------------------------------------------------
    def _tree_syncs(self, nodes: Sequence[Any]) -> Optional[Expr]:
        total = ZERO
        for nd in nodes:
            if isinstance(nd, PhaseNode):
                if nd.synced:
                    total = total + ONE
            else:
                inner = self._tree_syncs(nd.body)
                if inner is None or nd.count is None:
                    return None
                total = total + nd.count * inner
        return total

    def _tree_words(self, nodes: Sequence[Any], kind: str) -> Optional[Expr]:
        total = ZERO
        for nd in nodes:
            if isinstance(nd, PhaseNode):
                for acc in nd.accesses:
                    if acc.kind != kind:
                        continue
                    if acc.region is None or acc.multiplier is None:
                        return None
                    total = total + acc.region.count() * acc.multiplier
            else:
                inner = self._tree_words(nd.body, kind)
                if inner is None or nd.count is None:
                    return None
                total = total + nd.count * inner
        return total

    def _program_kappa(self, phases: List[FlatPhase]) -> Optional[Expr]:
        kappas = [fp.kappa for fp in phases]
        if not kappas:
            return ZERO
        if any(k is None for k in kappas):
            return None
        ctx = self.an.base_ctx()
        for cand in kappas:
            if all(ctx.prove_nonneg(cand - other) for other in kappas):
                return cand
        return None

    # -- assembly --------------------------------------------------------
    def _flatten(self, nodes: Sequence[Any], mult: Optional[Expr],
                 out: List[FlatPhase]) -> None:
        for nd in nodes:
            if isinstance(nd, PhaseNode):
                out.append(FlatPhase(index=len(out), node=nd, mult=mult))
            else:
                inner = None if (mult is None or nd.count is None) else mult * nd.count
                self._flatten(nd.body, inner, out)

    def _suppressed(self, diag: Diagnostic) -> bool:
        for origin in diag.origins:
            try:
                line = int(origin.rsplit(":", 1)[1])
            except (IndexError, ValueError):
                continue
            if diag.code in self.an.suppress.get(line, set()):
                return True
        return False

    def run(self) -> ProgramReport:
        an = self.an
        phases: List[FlatPhase] = []
        self._flatten(an.top, ONE, phases)
        for fp in phases:
            self._check_phase(fp)
            fp.kappa = self._phase_kappa(fp)
            self._check_kappa(fp)
        for note in an.notes:
            self._note_once(("structure", note), "QSA005", note, None, None, [])
        profile: Dict[str, Optional[Expr]] = {
            "n_syncs": self._tree_syncs(an.top),
            "put_words": self._tree_words(an.top, "put"),
            "get_words": self._tree_words(an.top, "get"),
            "kappa": self._program_kappa(phases),
        }
        findings = [d for d in self.findings if not self._suppressed(d)]
        order = {"error": 0, "warn": 1, "note": 2}
        findings.sort(key=lambda d: (order.get(d.severity, 3), d.code, d.phase or 0))
        report = ProgramReport(
            name=an.fn.name,
            path=an.relpath,
            line=an.fn.lineno,
            algo=an.spec.algo,
            phases=phases,
            findings=findings,
            notes=list(an.notes),
            profile=profile,
            opaques=dict(an.opaques),
            analyzer=an,
        )
        report.crosscheck = _crosscheck(report)
        return report


# ----------------------------------------------------------------------
# SYMBOLIC cross-check against repro.predict.sources
# ----------------------------------------------------------------------
def _normalize_origin(text: str) -> str:
    try:
        return ast.unparse(ast.parse(text, mode="eval").body)
    except SyntaxError:
        return text


def _crosscheck(report: ProgramReport) -> Optional[Dict[str, str]]:
    if report.algo is None:
        return None
    try:
        from repro.predict import sources
    except Exception as exc:  # pragma: no cover - predict layer always ships
        return {"status": f"skipped: repro.predict.sources unavailable ({exc})"}
    table = getattr(sources, "SYMBOLIC", {})
    entry = table.get(report.algo)
    if entry is None:
        return {"status": f"skipped: no SYMBOLIC entry for algo {report.algo!r}"}
    rename: Dict[str, str] = {}
    for sname, origin in entry.get("symbols", {}).items():
        sym = report.opaques.get(_normalize_origin(origin))
        if sym is not None and sym.name != sname:
            rename[sym.name] = sname
    out: Dict[str, str] = {}
    for key in ("n_syncs", "put_words", "get_words", "kappa"):
        want = entry.get(key)
        if want is None:
            out[key] = "skipped"
            continue
        want_expr = parse_expr_str(want)
        got = report.profile.get(key)
        if got is None:
            out[key] = f"mismatch: no closed form derived (declared {want})"
            continue
        for old, new in rename.items():
            got = got.subst(old, Expr.sym(new))
        out[key] = (
            "ok" if got == want_expr
            else f"mismatch: derived {got.render()} != declared {want}"
        )
    return out


def crosscheck_failed(report: ProgramReport) -> bool:
    cc = report.crosscheck
    return bool(cc) and any(v.startswith("mismatch") for v in cc.values())


# ----------------------------------------------------------------------
# Discovery and reporting
# ----------------------------------------------------------------------
def analyze_file(path: str) -> List[ProgramReport]:
    """Analyze every SPMD program in one source file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    reports: List[ProgramReport] = []
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if not (node.name.endswith("_program") or _spec_from_decorators(node).declared):
            continue
        analyzer = ProgramAnalyzer(node, path, lines)
        analyzer.run()
        reports.append(_Engine(analyzer).run())
    return reports


def analyze_paths(paths: Sequence[str], select: Optional[str] = None) -> List[ProgramReport]:
    """Analyze all programs under the given files/directories."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                files.extend(
                    os.path.join(root, f) for f in sorted(names) if f.endswith(".py")
                )
        else:
            files.append(path)
    reports: List[ProgramReport] = []
    for path in files:
        reports.extend(analyze_file(path))
    if select:
        reports = [r for r in reports if select in r.name]
    return reports


def _render_expr(e: Optional[Expr]) -> str:
    return "?" if e is None else e.render()


def _render_report(report: ProgramReport, out) -> None:
    print(f"{report.name}  ({report.path}:{report.line})", file=out)
    for fp in report.phases:
        head = f"  phase {fp.index}"
        if fp.node.sync_line is not None:
            head += f" (sync @ line {fp.node.sync_line})"
        elif not fp.node.synced:
            head += " (open tail)"
        if fp.mult is None:
            head += "  [x ?]"
        elif fp.mult != ONE:
            head += f"  [x {fp.mult.render()}]"
        print(head, file=out)
        for acc in fp.node.accesses:
            region = acc.region.render() if acc.region is not None else f"<{acc.reason}>"
            mult = ""
            if acc.multiplier is None:
                mult = "  x?"
            elif acc.multiplier != ONE:
                mult = f"  x{acc.multiplier.render()}"
            print(f"    {acc.kind:<11} {acc.array:<12} {region}{mult}", file=out)
        print(f"    kappa = {_render_expr(fp.kappa)}", file=out)
    prof = report.profile
    print(
        "  profile: "
        + "  ".join(f"{k}={_render_expr(prof.get(k))}"
                    for k in ("n_syncs", "put_words", "get_words", "kappa")),
        file=out,
    )
    if report.crosscheck is not None:
        body = ", ".join(f"{k}: {v}" for k, v in report.crosscheck.items())
        print(f"  crosscheck[{report.algo}]: {body}", file=out)
    for diag in report.findings:
        for line in diag.format().splitlines():
            print(f"  {line}", file=out)
    errors = len(report.errors)
    notes = len(report.findings) - errors
    status = "CLEAN" if not errors else f"{errors} error(s)"
    if notes:
        status += f", {notes} note(s)"
    print(f"  => {status}", file=out)


def _json_report(report: ProgramReport) -> Dict[str, Any]:
    return {
        "program": report.name,
        "path": report.path,
        "line": report.line,
        "algo": report.algo,
        "phases": [
            {
                "index": fp.index,
                "sync_line": fp.node.sync_line,
                "repeat": None if fp.mult is None else fp.mult.render(),
                "kappa": None if fp.kappa is None else fp.kappa.render(),
                "accesses": [
                    {
                        "kind": acc.kind,
                        "array": acc.array,
                        "region": None if acc.region is None else acc.region.render(),
                        "reason": acc.reason or None,
                        "origin": acc.origin,
                        "multiplier": None if acc.multiplier is None else acc.multiplier.render(),
                    }
                    for acc in fp.node.accesses
                ],
            }
            for fp in report.phases
        ],
        "profile": {
            k: (None if v is None else v.render()) for k, v in report.profile.items()
        },
        "crosscheck": report.crosscheck,
        "findings": [
            {
                "code": d.code,
                "severity": d.severity,
                "message": d.message,
                "phase": d.phase,
                "array": d.array,
                "pids": list(d.pids),
                "cells": None if d.cells is None else list(d.cells),
                "origins": list(d.origins),
            }
            for d in report.findings
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.phases",
        description="Statically prove QSM phase-safety and extract symbolic costs.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to analyze")
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--select", default=None, metavar="SUBSTR",
        help="only analyze programs whose name contains SUBSTR",
    )
    args = parser.parse_args(argv)
    try:
        reports = analyze_paths(args.paths, select=args.select)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not reports:
        print("no SPMD programs found", file=sys.stderr)
        return 2
    failed = any(r.errors or crosscheck_failed(r) for r in reports)
    if args.json:
        payload = {
            "tool": "phases",
            "ok": not failed,
            "programs": [_json_report(r) for r in reports],
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for i, report in enumerate(reports):
            if i:
                print()
            _render_report(report, sys.stdout)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
