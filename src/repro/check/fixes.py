"""Minimal source patches for the mechanically-fixable lint rules.

``python -m repro.check.lint --fix`` drives :func:`fix_paths`; the
fixable subset is

* **QL103** — an unordered ``set``/``frozenset()``/``.keys()``
  iterable is wrapped in ``sorted(...)`` in place;
* **QL105** — a bare ``except:`` clause becomes
  ``except Exception:`` (still broad, but no longer swallows
  ``KeyboardInterrupt``/``SystemExit``);
* **QL106** — a mutable default argument is replaced with ``None`` and
  a ``if <arg> is None: <arg> = <original>`` guard is inserted at the
  top of the body (after the docstring).

The patches are deliberately *minimal*: edits are byte-exact splices
computed from AST offsets (``col_offset`` is a UTF-8 byte offset, so
all splicing happens on the encoded source), nothing is reformatted,
comments and suppressions are untouched, and only findings the linter
itself reports — i.e. after ``# qsmlint: disable`` filtering — are
patched.  Every rewritten module is re-parsed before it is accepted;
a patch that fails to parse is dropped wholesale and the file is left
as it was.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.check.lint import Finding, lint_source

__all__ = ["FIXABLE", "fix_source", "fix_file", "fix_paths"]

#: Rules ``--fix`` knows how to patch.
FIXABLE: Set[str] = {"QL103", "QL105", "QL106"}

#: One splice: replace ``source_bytes[start:end]`` with ``text``.
#: ``seq`` breaks ties between same-offset insertions (guards for
#: earlier arguments must land first).
_Edit = Tuple[int, int, bytes, int]


def _line_starts(blob: bytes) -> List[int]:
    """Byte offset of every line start (1-based line -> ``starts[line-1]``)."""
    starts = [0]
    for i, ch in enumerate(blob):
        if ch == 0x0A:
            starts.append(i + 1)
    return starts


def _abs_offset(starts: List[int], lineno: int, col: int) -> int:
    return starts[lineno - 1] + col


def _node_span(starts: List[int], node: ast.AST) -> Tuple[int, int]:
    return (
        _abs_offset(starts, node.lineno, node.col_offset),
        _abs_offset(starts, node.end_lineno, node.end_col_offset),
    )


class _FixCollector(ast.NodeVisitor):
    """Walk one module and collect candidate fix sites.

    Mirrors the linter's QL103/QL106 detection exactly, but keeps the
    AST nodes so edits can be computed; :func:`fix_source` intersects
    these with the linter's (suppression-filtered) findings.
    """

    def __init__(self) -> None:
        #: (line, col, code) -> data needed to build the edit
        self.ql103: Dict[Tuple[int, int], ast.expr] = {}
        #: (line, col) of the default node -> (function node, arg name, default)
        self.ql106: Dict[Tuple[int, int], Tuple[ast.AST, str, ast.expr]] = {}
        #: (line, col) of each bare ``except:`` handler
        self.ql105: Dict[Tuple[int, int], ast.ExceptHandler] = {}

    # -- QL103 ----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._collect_unordered_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._collect_unordered_iter(node.iter)
        self.generic_visit(node)

    def _collect_unordered_iter(self, iter_node: ast.expr) -> None:
        flagged = isinstance(iter_node, (ast.Set, ast.SetComp))
        if not flagged and isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                flagged = True
            elif isinstance(func, ast.Attribute) and func.attr == "keys":
                flagged = True
        if flagged:
            self.ql103[(iter_node.lineno, iter_node.col_offset)] = iter_node

    # -- QL105 ----------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.ql105[(node.lineno, node.col_offset)] = node
        self.generic_visit(node)

    # -- QL106 ----------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._collect_mutable_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._collect_mutable_defaults(node)
        self.generic_visit(node)

    def _collect_mutable_defaults(self, node) -> None:
        args = node.args
        # Positional defaults right-align against posonlyargs + args.
        positional = list(args.posonlyargs) + list(args.args)
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            self._maybe_add(node, arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._maybe_add(node, arg.arg, default)

    def _maybe_add(self, func, name: str, default: ast.expr) -> None:
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                ast.DictComp, ast.SetComp)):
            self.ql106[(default.lineno, default.col_offset)] = (func, name, default)


def _guard_anchor(source: str, starts: List[int], func) -> Tuple[int, str, bool]:
    """Where a ``None`` guard goes: (byte offset, indent, append_newline).

    The guard lands at the line start of the first non-docstring body
    statement.  When the body is *only* a docstring (or ``...``), it is
    appended on the line after the last body statement instead.
    """
    body = func.body
    first = body[0]
    has_docstring = (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    )
    anchor_stmt = None
    for stmt in body[1:] if has_docstring else body:
        anchor_stmt = stmt
        break
    if anchor_stmt is not None:
        offset = _abs_offset(starts, anchor_stmt.lineno, 0)
        line = source.splitlines(keepends=False)[anchor_stmt.lineno - 1]
        indent = line[: anchor_stmt.col_offset]
        return offset, indent, False
    # Docstring-only body: append after it, reusing its indentation.
    line = source.splitlines(keepends=False)[first.lineno - 1]
    indent = line[: first.col_offset]
    end_line = first.end_lineno
    if end_line >= len(starts):  # docstring closes the file
        blob = source.encode("utf-8")
        return len(blob), indent, not blob.endswith(b"\n")
    return starts[end_line], indent, False


def fix_source(
    source: str, path: str = "<string>", model_scope: Optional[bool] = None
) -> Tuple[str, List[Finding]]:
    """Patch the fixable findings in *source*.

    Returns ``(new_source, applied)`` — *applied* lists the findings
    whose sites were rewritten.  The input comes back unchanged when
    nothing is fixable or the patched module fails to re-parse.
    """
    findings = [f for f in lint_source(source, path, model_scope) if f.code in FIXABLE]
    if not findings:
        return source, []
    tree = ast.parse(source, filename=path)
    collector = _FixCollector()
    collector.visit(tree)

    blob = source.encode("utf-8")
    starts = _line_starts(blob)
    edits: List[_Edit] = []
    applied: List[Finding] = []
    seq = 0
    for finding in findings:
        site = (finding.line, finding.col)
        if finding.code == "QL103" and site in collector.ql103:
            node = collector.ql103[site]
            start, end = _node_span(starts, node)
            edits.append((start, end, b"sorted(" + blob[start:end] + b")", seq))
            applied.append(finding)
            seq += 1
        elif finding.code == "QL105" and site in collector.ql105:
            handler = collector.ql105[site]
            start = _abs_offset(starts, handler.lineno, handler.col_offset)
            colon = blob.find(b":", start)
            # The handler node starts at the ``except`` keyword; rewrite
            # everything up to the clause colon, preserving the suite.
            if blob[start : start + 6] == b"except" and colon != -1:
                edits.append((start, colon, b"except Exception", seq))
                applied.append(finding)
                seq += 1
        elif finding.code == "QL106" and site in collector.ql106:
            func, name, default = collector.ql106[site]
            start, end = _node_span(starts, default)
            default_src = blob[start:end].decode("utf-8")
            edits.append((start, end, b"None", seq))
            seq += 1
            anchor, indent, lead_nl = _guard_anchor(source, starts, func)
            guard = (
                f"{indent}if {name} is None:\n"
                f"{indent}    {name} = {default_src}\n"
            )
            prefix = b"\n" if lead_nl else b""
            edits.append((anchor, anchor, prefix + guard.encode("utf-8"), seq))
            applied.append(finding)
            seq += 1
    if not edits:
        return source, []

    # Splice back-to-front so earlier offsets stay valid; same-offset
    # insertions apply highest-seq first, leaving lower seq (earlier
    # argument) physically first in the file.
    out = blob
    for start, end, text, _ in sorted(edits, key=lambda e: (e[0], e[3]), reverse=True):
        out = out[:start] + text + out[end:]
    new_source = out.decode("utf-8")
    try:
        ast.parse(new_source, filename=path)
    except SyntaxError:  # a patch went wrong: refuse rather than corrupt
        return source, []
    return new_source, applied


def fix_file(
    path: Union[str, Path], model_scope: Optional[bool] = None
) -> List[Finding]:
    """Patch one file in place; returns the findings fixed."""
    path = Path(path)
    source = path.read_text()
    new_source, applied = fix_source(source, str(path), model_scope=model_scope)
    if applied:
        path.write_text(new_source)
    return applied


def fix_paths(
    paths: Sequence[Union[str, Path]], model_scope: Optional[bool] = None
) -> List[Finding]:
    """Patch files and/or directory trees (``**/*.py``), sorted order."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    applied: List[Finding] = []
    for f in files:
        applied.extend(fix_file(f, model_scope=model_scope))
    return applied
