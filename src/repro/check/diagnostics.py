"""Shared diagnostic plumbing for the ``repro.check`` tool family.

Both checkers that reason about QSM phase discipline — the runtime
sanitizer (:mod:`repro.check.sanitizer`, ``QS###`` codes) and the
static phase analyzer (:mod:`repro.check.phases`, ``QSA###`` codes) —
report through the same frozen :class:`Diagnostic` record, so tooling
that collects, pickles, filters or pretty-prints findings does not care
which layer produced them.  The ``tool`` field distinguishes the
producer and sets the ``[sanitize]`` / ``[phases]`` prefix of the
rendered line; everything else (code, severity, provenance ``origins``)
is shared vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Diagnostic"]


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding, with enough context to locate the bug."""

    code: str
    severity: str  # "error" | "warning" | "note"
    message: str
    phase: Optional[int] = None
    array: Optional[str] = None
    cells: Optional[str] = None
    pids: Tuple[int, ...] = ()
    #: ``"pid N @ file:line"`` provenance strings, one per involved request.
    origins: Tuple[str, ...] = ()
    #: Producer tag: ``"sanitize"`` (runtime) or ``"phases"`` (static).
    tool: str = "sanitize"

    def format(self) -> str:
        parts = [f"[{self.tool}] {self.code} ({self.severity})"]
        if self.phase is not None:
            parts.append(f"phase {self.phase}")
        parts.append(self.message)
        out = " ".join(parts)
        if self.origins:
            out += "\n" + "\n".join(f"    enqueued by {o}" for o in self.origins)
        return out
