"""``repro.check`` — correctness tooling for the QSM reproduction.

The paper's QSM contract (§2) only holds for programs that obey the
phase discipline: no shared cell is both read and written within one
phase, get results are consumed only after the owning ``sync()``, and
collective calls (``alloc``/``free``/``sync``) stay congruent across
processors.  §4's "ignore h_r, randomise the layout" argument assumes
the runtime can rely on that discipline.  Nothing in the measured
figures is meaningful for a program that silently violates it, so this
package enforces it twice:

* a **runtime phase-conflict sanitizer**
  (:mod:`repro.check.sanitizer`) that shadows every
  :class:`~repro.qsmlib.requests.RequestQueue` at sync time and raises
  (or warns) with per-pid provenance — the program ``file:line`` that
  enqueued each offending request;
* a **static determinism lint** (:mod:`repro.check.lint`, runnable as
  ``python -m repro.check.lint src/repro``) that flags wall-clock and
  global-RNG use in model code, unordered iteration feeding event
  ordering, premature get-handle reads, and general hygiene;
* a **static phase analyzer** (:mod:`repro.check.phases`, runnable as
  ``python -m repro.check.phases src/repro/algorithms``) that proves
  the same contract *symbolically for all p*: it splits each SPMD
  program into phases at ``yield ctx.sync()``, abstracts every index
  expression into an affine region over ``(p, pid, n, block)``, and
  emits ``QSA###`` findings plus symbolic per-phase cost profiles
  cross-checked against :mod:`repro.predict.sources`.

Overhead contract
-----------------
Like :mod:`repro.obs`, the sanitizer is **off by default** and must
stay near free when off: the qsmlib integration fetches the active
sanitizer once per machine/queue and guards with ``is not None`` — a
disarmed run pays one load + branch per *enqueue call site*, never per
simulated event.  The budget is enforced by
``benchmarks/bench_check.py`` (< 3% vs the committed baseline).

Usage
-----
::

    from repro import check

    check.arm("error")          # or QSM_SANITIZE=error in the environment
    run_sample_sort(...)        # raises SanitizerError on a QSM violation
    check.disarm()

``check.arm("warn")`` reports diagnostics on stderr (and through
``repro.obs`` counters when observability is enabled) without raising.
State is process-global (the ``QSM_OBS`` / ``QSM_FAST_SYNC`` idiom) so
``--jobs N`` worker processes inherit the armed mode through the
``QSM_SANITIZE`` environment variable.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.check.sanitizer import Diagnostic, PhaseSanitizer, SanitizerError

__all__ = [
    "Diagnostic",
    "PhaseSanitizer",
    "SanitizerError",
    "ENV_VAR",
    "MODES",
    "arm",
    "disarm",
    "armed",
    "active",
    "mode",
    "diagnostics",
    "drain_diagnostics",
    "merge_diagnostics",
]

#: Env var that arms the sanitizer for a whole process tree.
ENV_VAR = "QSM_SANITIZE"
#: Accepted sanitizer modes.
MODES = ("error", "warn")

_SANITIZER: Optional[PhaseSanitizer] = None


def arm(mode: str = "error", *, sanitizer: Optional[PhaseSanitizer] = None) -> PhaseSanitizer:
    """Arm the runtime sanitizer (fresh state).

    ``"error"`` raises :class:`SanitizerError` on the first
    error-severity diagnostic; ``"warn"`` records and reports every
    diagnostic without raising.  A custom *sanitizer* instance (e.g. a
    recording subclass, see :mod:`repro.check.validate`) may be
    installed instead of a fresh :class:`PhaseSanitizer`; its ``mode``
    is forced to *mode*.
    """
    global _SANITIZER
    if mode not in MODES:
        raise ValueError(f"sanitize mode must be one of {MODES}, got {mode!r}")
    if sanitizer is None:
        sanitizer = PhaseSanitizer(mode)
    else:
        sanitizer.mode = mode
    _SANITIZER = sanitizer
    os.environ[ENV_VAR] = mode
    return _SANITIZER


def disarm() -> None:
    """Disarm the sanitizer and drop any recorded diagnostics."""
    global _SANITIZER
    _SANITIZER = None
    os.environ[ENV_VAR] = "0"


def armed() -> bool:
    """Whether the sanitizer is currently armed."""
    return _SANITIZER is not None


def active() -> Optional[PhaseSanitizer]:
    """The armed sanitizer, or ``None`` — model code guards on this."""
    return _SANITIZER


def mode() -> Optional[str]:
    return _SANITIZER.mode if _SANITIZER is not None else None


def diagnostics() -> List[Diagnostic]:
    """Diagnostics recorded since :func:`arm` (empty when disarmed)."""
    if _SANITIZER is None:
        return []
    return list(_SANITIZER.diagnostics)


def drain_diagnostics() -> List[Diagnostic]:
    """Return and clear the recorded diagnostics (the worker side of
    the ``--jobs`` protocol, mirroring :func:`repro.obs.drain_payload`).

    :class:`Diagnostic` is a frozen dataclass of plain values, so the
    returned list pickles across the executor result channel.
    """
    if _SANITIZER is None:
        return []
    out = list(_SANITIZER.diagnostics)
    _SANITIZER.diagnostics.clear()
    return out


def merge_diagnostics(diags: List[Diagnostic]) -> None:
    """Fold drained worker diagnostics into this process's sanitizer
    (the parent side of the ``--jobs`` protocol).

    A no-op when disarmed — matching :func:`repro.obs.merge_payload`,
    which drops payloads once collection is off.
    """
    if _SANITIZER is None or not diags:
        return
    _SANITIZER.diagnostics.extend(diags)


# Honour QSM_SANITIZE at import so spawned worker processes (which
# re-import rather than fork) come up armed, mirroring repro.obs.
_env = os.environ.get(ENV_VAR, "").strip().lower()
if _env in MODES:
    arm(_env)
