"""Runtime validation of the static phase analyzer.

The analyzer (:mod:`repro.check.phases`) claims its affine index
regions **over-approximate** every access a program can make: for any
concrete ``(p, n, params, seed)``, the cells a processor actually
enqueues in phase *i* must be a subset of the statically derived
region, and the symbolic per-phase κ must dominate the measured one.

This module checks that claim end to end:

* :class:`ShadowRecorder` is a :class:`~repro.check.sanitizer.PhaseSanitizer`
  that additionally records every queued index per
  ``(phase, array, kind, pid)`` before running the normal shadow pass —
  install it with ``check.arm("warn", sanitizer=ShadowRecorder())``;
* :func:`validate_report` instantiates a program's static phase tree at
  the concrete configuration (loop counts and opaque symbols evaluated
  from the real parameter objects) and compares it against the
  recorder's shadow sets and the run's tracked κ.

Used by ``tests/test_check_validate.py`` as a property test over the
three paper algorithms.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.check.phases import (
    Access,
    LoopNode,
    PhaseNode,
    ProgramReport,
    _Engine,
)
from repro.check.sanitizer import PhaseSanitizer

__all__ = ["ShadowRecorder", "opaque_env", "expand_phases", "validate_report"]


class ShadowRecorder(PhaseSanitizer):
    """Sanitizer that shadows the per-phase index sets it checks.

    ``shadow[i]`` maps ``(array_name, kind, pid)`` to the set of global
    indices processor *pid* queued for *array_name* in phase *i*
    (``kind`` is ``"put"`` or ``"get"``).
    """

    def __init__(self, mode: str = "warn") -> None:
        super().__init__(mode)
        self.shadow: List[Dict[Tuple[str, str, int], Set[int]]] = []

    def check_phase(self, queues, phase_idx: int) -> None:
        while len(self.shadow) <= phase_idx:
            self.shadow.append({})
        rec = self.shadow[phase_idx]
        for q in queues:
            for kind, reqs in (("get", q.gets), ("put", q.puts)):
                for req in reqs:
                    key = (req.arr.name, kind, q.pid)
                    cells = rec.setdefault(key, set())
                    cells.update(int(i) for i in np.asarray(req.indices).ravel())
        super().check_phase(queues, phase_idx)


def opaque_env(report: ProgramReport, p: int, n: int,
               namespace: Optional[Dict[str, Any]] = None) -> Dict[str, int]:
    """Concrete values for every symbol of *report* at ``(p, n)``.

    Opaque symbols are evaluated from their recorded source text
    (``params.iterations(p)``, ``-(-(n) // p)`` ...) against
    *namespace*, which must provide the objects those texts reference
    (typically ``{"params": params}``).  Evaluation is in registration
    order so block symbols may reference earlier opaques.
    """
    ns: Dict[str, Any] = dict(namespace or {})
    ns.update({"p": p, "n": n})
    env: Dict[str, int] = {"p": p, "n": n}
    for sym in report.opaques.values():
        value = eval(sym.origin, {"__builtins__": {}}, ns)  # noqa: S307
        env[sym.name] = int(value)
        ns[sym.name] = int(value)
    return env


def expand_phases(nodes, env: Dict[str, int]) -> List[PhaseNode]:
    """Unroll the phase tree at a concrete configuration.

    Only *synced* phases are kept — they are what the runtime sanitizer
    sees; an open trailing tail never reaches ``check_phase``.
    """
    out: List[PhaseNode] = []
    for nd in nodes:
        if isinstance(nd, PhaseNode):
            if nd.synced:
                out.append(nd)
        elif isinstance(nd, LoopNode):
            if nd.count is None:
                raise ValueError(
                    f"loop at line {nd.line} has a data-dependent trip count; "
                    "cannot expand the phase tree"
                )
            count = int(nd.count.evaluate(env))
            body = expand_phases(nd.body, env)
            out.extend(body * count)
    return out


def _static_cells(accesses: List[Access], env: Dict[str, int],
                  pid: int) -> Optional[Set[int]]:
    """Union of the statically allowed cells; ``None`` = unbounded."""
    allowed: Set[int] = set()
    for acc in accesses:
        if acc.region is None:
            return None  # data-dependent: the static side claims nothing
        if not _Engine._guards_hold(acc.guards, env, pid):
            continue  # branch not taken on this pid
        cells = _Engine._cells(acc.region, env, pid)
        if cells is None:
            return None
        allowed |= cells
    return allowed


def validate_report(
    report: ProgramReport,
    recorder: ShadowRecorder,
    run,
    *,
    p: int,
    n: int,
    namespace: Optional[Dict[str, Any]] = None,
    name_map: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Check static ⊇ runtime for one recorded run; returns problems.

    *name_map* translates runtime array names to the analyzer's names
    (``{"prefix.A": "A"}``); unlisted names must match directly.
    An empty return value means every recorded index set was covered by
    its static region and every tracked κ was dominated.
    """
    env = opaque_env(report, p, n, namespace)
    assert report.analyzer is not None
    static = expand_phases(report.analyzer.top, env)
    name_map = name_map or {}
    problems: List[str] = []

    if len(static) != len(recorder.shadow):
        problems.append(
            f"{report.name}: static phase count {len(static)} != "
            f"recorded {len(recorder.shadow)} at {env}"
        )
    for i, (ph, rec) in enumerate(zip(static, recorder.shadow)):
        by_key: Dict[Tuple[str, str], List[Access]] = {}
        for acc in ph.accesses:
            if acc.kind in ("put", "get"):
                by_key.setdefault((acc.array, acc.kind), []).append(acc)
        for (aname, kind, pid), cells in rec.items():
            sname = name_map.get(aname, aname)
            accs = by_key.get((sname, kind))
            if accs is None:
                problems.append(
                    f"{report.name} phase {i}: runtime {kind} on {aname!r} "
                    f"(pid {pid}) has no static access at all"
                )
                continue
            allowed = _static_cells(accs, env, pid)
            if allowed is None:
                continue  # deferred to the runtime sanitizer (QSA005)
            extra = sorted(cells - allowed)
            if extra:
                problems.append(
                    f"{report.name} phase {i}: pid {pid} {kind} cells {extra[:8]} "
                    f"on {aname!r} escape the static region at {env}"
                )

    # κ domination: symbolic per-phase κ >= the tracked runtime κ.
    kappa_by_node = {id(fp.node): fp.kappa for fp in report.phases}
    for i, ph in enumerate(static):
        if i >= len(run.phases):
            break
        observed = run.phases[i].kappa
        symbolic = kappa_by_node.get(id(ph))
        if observed is None or symbolic is None:
            continue
        bound = int(symbolic.evaluate(env))
        if observed > bound:
            problems.append(
                f"{report.name} phase {i}: observed kappa {observed} exceeds "
                f"symbolic bound {bound} at {env}"
            )
    return problems
