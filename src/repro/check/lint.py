"""Static determinism / model-hygiene lint for the reproduction.

Usage::

    python -m repro.check.lint src/repro            # text output, exit 1 on findings
    python -m repro.check.lint src/repro --json     # machine-readable findings
    python -m repro.check.lint src/repro --fix      # patch QL103/QL106 in place
    python -m repro.check.lint --list-rules

The simulation must be a pure function of its configuration and seed —
that is what makes the measured-vs-predicted comparisons (Figs 1–3,
Table 3) reproducible and the ``--jobs N`` executor results
job-count-invariant.  This linter enforces the coding rules that keep
it that way, over plain ``ast`` (no third-party dependencies):

=======  ==============================================================
code     rule
=======  ==============================================================
QL101    wall-clock call (``time.time``/``perf_counter``/...,
         ``datetime.now``/...) in model code — simulated time must come
         from the DES clock  *(model scope)*
QL102    global-RNG use (``random.*``, module-level ``np.random.<fn>``)
         in model code — randomness must flow from seeded
         ``np.random.Generator`` streams  *(model scope)*
QL103    iteration over a ``set``/``frozenset``/``dict.keys()`` without
         an explicit ``sorted(...)`` — unordered iteration feeding
         event or message ordering is a heisenbug factory
QL104    a ``ctx.get(...)``/``ctx.get_range(...)`` handle's ``.data``
         read before the next ``yield`` — QSM forbids consuming values
         fetched in the same phase.  Handles are tracked through plain
         names, containers (``handles.append(ctx.get(...))``, list
         literals/comprehensions of gets), and attributes
         (``self.h = ctx.get(...)``)
QL105    bare ``except:`` — swallows everything incl. KeyboardInterrupt
QL106    mutable default argument (list/dict/set literal or call)
QL107    environment read (``os.environ``/``os.getenv``) in model code —
         ambient configuration breaks run reproducibility  *(model
         scope)*
QL108    ``ctx.sync()`` result discarded — the token must be yielded,
         otherwise the phase never ends
=======  ==============================================================

*Model scope* rules apply only to files under
``repro/{sim,qsmlib,machine,algorithms}/`` (the deterministic core);
the remaining rules apply to every scanned file.

Suppress a finding with a trailing comment on the offending line::

    t0 = time.time()  # qsmlint: disable=QL101
    x = thing()       # qsmlint: disable          (all rules, this line)
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

RULES: Dict[str, str] = {
    "QL101": "wall-clock call in model code (simulated time must come from the DES clock)",
    "QL102": "global RNG in model code (use seeded np.random.Generator streams)",
    "QL103": "iteration over an unordered set/dict view without an explicit sort",
    "QL104": "get-handle .data read before the next yield (QSM same-phase read)",
    "QL105": "bare except: swallows everything, including KeyboardInterrupt",
    "QL106": "mutable default argument",
    "QL107": "environment read in model code (ambient config breaks reproducibility)",
    "QL108": "ctx.sync() result discarded — the token must be yielded",
}

#: Subpackages forming the deterministic model core (QL101/102/107 scope).
MODEL_PACKAGES = ("sim", "qsmlib", "machine", "algorithms")

_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: np.random attributes that are fine at module level: seeded-generator
#: construction, not hidden global state.
_RNG_SAFE_ATTRS = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "default_rng",
}

_SUPPRESS_RE = re.compile(r"#\s*qsmlint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")
_ALL = "ALL"


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def is_model_path(path: Union[str, Path]) -> bool:
    """Whether *path* is inside the deterministic model core."""
    posix = Path(path).as_posix()
    return any(f"repro/{pkg}/" in posix for pkg in MODEL_PACKAGES)


def _suppressions(source: str) -> Dict[int, Union[str, Set[str]]]:
    """Map line number -> suppressed codes (or _ALL) from lint comments."""
    out: Dict[int, Union[str, Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        if m.group(1) is None:
            out[lineno] = _ALL
        else:
            out[lineno] = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
    return out


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _contains_yield(node: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(node))


class _FileLinter(ast.NodeVisitor):
    """One pass over one module's AST, collecting findings."""

    def __init__(self, path: str, model_scope: bool) -> None:
        self.path = path
        self.model_scope = model_scope
        self.findings: List[Finding] = []
        self._seen: Set[tuple] = set()

    def add(self, node: ast.AST, code: str, message: str) -> None:
        key = (node.lineno, node.col_offset, code)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, code, message)
        )

    # -- QL101 / QL102 / QL107 (call forms) -----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted and self.model_scope:
            if dotted in _WALLCLOCK_CALLS:
                self.add(node, "QL101", f"wall-clock call {dotted}() in model code")
            elif dotted.startswith(("np.random.", "numpy.random.")):
                attr = dotted.rsplit(".", 1)[1]
                if attr not in _RNG_SAFE_ATTRS:
                    self.add(
                        node,
                        "QL102",
                        f"module-level {dotted}() uses numpy's hidden global RNG; "
                        "use a seeded np.random.Generator stream",
                    )
                elif attr == "default_rng" and not node.args and not node.keywords:
                    self.add(
                        node,
                        "QL102",
                        "np.random.default_rng() without a seed is entropy-seeded; "
                        "pass an explicit seed",
                    )
            elif dotted.startswith("random.") and dotted.count(".") == 1:
                self.add(
                    node,
                    "QL102",
                    f"{dotted}() uses the process-global random module; "
                    "use a seeded np.random.Generator stream",
                )
            elif dotted == "os.getenv":
                self.add(node, "QL107", "os.getenv() read in model code")
        self.generic_visit(node)

    # -- QL107 (attribute form) -----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.model_scope and _dotted(node) == "os.environ":
            self.add(node, "QL107", "os.environ read in model code")
        self.generic_visit(node)

    # -- QL103 ----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def _check_unordered_iter(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self.add(
                iter_node,
                "QL103",
                "iterating a set literal/comprehension; wrap in sorted(...) for a "
                "deterministic order",
            )
            return
        if isinstance(iter_node, ast.Call):
            dotted = _dotted(iter_node.func)
            if dotted in ("set", "frozenset"):
                self.add(
                    iter_node,
                    "QL103",
                    f"iterating {dotted}(...); wrap in sorted(...) for a "
                    "deterministic order",
                )
            elif isinstance(iter_node.func, ast.Attribute) and iter_node.func.attr == "keys":
                self.add(
                    iter_node,
                    "QL103",
                    "iterating .keys(); iterate the dict directly (insertion order) "
                    "or wrap in sorted(...)",
                )

    # -- QL105 ----------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.add(node, "QL105", "bare except:; catch a specific exception type")
        self.generic_visit(node)

    # -- QL106 + QL104 entry --------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._scan_handle_reads(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._scan_handle_reads(node)
        self.generic_visit(node)

    def _check_mutable_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                    ast.DictComp, ast.SetComp)):
                self.add(
                    default,
                    "QL106",
                    f"mutable default argument in {node.name}(); use None and "
                    "construct inside the body",
                )

    # -- QL104: dataflow scan for handle reads before the next yield ----
    def _scan_handle_reads(self, func) -> None:
        """Flag ``.data``/``.values`` reads of same-phase get handles.

        Handles are tracked through three binding shapes: plain names
        (``h = ctx.get(...)``), containers (``handles.append(ctx.get(...))``,
        list/tuple literals or comprehensions of gets — read back via
        subscripts, ``for``-loops, or comprehensions over the container),
        and attributes (``self.h = ctx.get(...)``).  Every tracked
        binding is released at the next ``yield``.
        """
        tracked: Set[str] = set()
        containers: Set[str] = set()
        attrs: Set[str] = set()

        def flag(sub: ast.Attribute, what: str) -> None:
            self.add(
                sub,
                "QL104",
                f"{what}.{sub.attr} read before the next "
                "yield ctx.sync(); QSM get results are only available "
                "after the owning sync",
            )

        def scan_expr(node: ast.AST) -> bool:
            """Check uses in *node*; returns True if it contains a yield."""
            if _contains_yield(node):
                tracked.clear()
                containers.clear()
                attrs.clear()
                return True
            # Comprehensions whose iterable is a handle container bind
            # their target name to a handle for the comprehension body.
            comp_bound: Set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                    for gen in sub.generators:
                        if (
                            isinstance(gen.iter, ast.Name)
                            and gen.iter.id in containers
                            and isinstance(gen.target, ast.Name)
                        ):
                            comp_bound.add(gen.target.id)
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.Attribute) and sub.attr in ("data", "values")):
                    continue
                base = sub.value
                if isinstance(base, ast.Name) and (
                    base.id in tracked or base.id in comp_bound
                ):
                    flag(sub, base.id)
                elif (
                    isinstance(base, ast.Subscript)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in containers
                ):
                    flag(sub, f"{base.value.id}[...]")
                elif isinstance(base, ast.Attribute):
                    dotted = _dotted(base)
                    if dotted is not None and dotted in attrs:
                        flag(sub, dotted)
            return False

        def is_ctx_get(value: ast.AST) -> bool:
            return (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("get", "get_range")
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id == "ctx"
            )

        def holds_handle(value: ast.AST) -> bool:
            """Is *value* a handle-valued expression (get call or alias)?"""
            if is_ctx_get(value):
                return True
            return isinstance(value, ast.Name) and value.id in tracked

        def is_handle_collection(value: ast.AST) -> bool:
            if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                return any(holds_handle(elt) for elt in value.elts)
            if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                return is_ctx_get(value.elt)
            return False

        def bind_name(name: str, value: ast.AST) -> None:
            if holds_handle(value) or (
                isinstance(value, ast.Subscript)
                and isinstance(value.value, ast.Name)
                and value.value.id in containers
            ):
                tracked.add(name)
                containers.discard(name)
            elif is_handle_collection(value):
                containers.add(name)
                tracked.discard(name)
            else:
                tracked.discard(name)
                containers.discard(name)

        def bind_attr(target: ast.Attribute, value: ast.AST) -> None:
            dotted = _dotted(target)
            if dotted is not None:
                if holds_handle(value):
                    attrs.add(dotted)
                else:
                    attrs.discard(dotted)

        def update_assign(stmt: ast.Assign) -> None:
            value = stmt.value
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bind_name(target.id, value)
                elif isinstance(target, ast.Attribute):
                    bind_attr(target, value)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    # Tuple assignment / unpacking: ``h, x = ctx.get(...), y``
                    # binds element-wise; ``a, b = handles`` binds every
                    # plain name to a handle when the RHS is a container.
                    elts = target.elts
                    if (
                        isinstance(value, (ast.Tuple, ast.List))
                        and len(value.elts) == len(elts)
                        and not any(isinstance(t, ast.Starred) for t in elts)
                    ):
                        for t, v in zip(elts, value.elts):
                            if isinstance(t, ast.Name):
                                bind_name(t.id, v)
                            elif isinstance(t, ast.Attribute):
                                bind_attr(t, v)
                    elif isinstance(value, ast.Name) and value.id in containers:
                        for t in elts:
                            if isinstance(t, ast.Starred):
                                if isinstance(t.value, ast.Name):
                                    containers.add(t.value.id)
                                    tracked.discard(t.value.id)
                            elif isinstance(t, ast.Name):
                                tracked.add(t.id)
                                containers.discard(t.id)
                    else:
                        for t in elts:
                            inner = t.value if isinstance(t, ast.Starred) else t
                            if isinstance(inner, ast.Name):
                                tracked.discard(inner.id)
                                containers.discard(inner.id)

        def update_expr_stmt(value: ast.AST) -> None:
            # handles.append(ctx.get(...)) and friends mark the target
            # name as a handle container.
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("append", "add", "insert", "extend")
                and isinstance(value.func.value, ast.Name)
                and any(
                    holds_handle(arg) or is_handle_collection(arg)
                    for arg in value.args
                )
            ):
                containers.add(value.func.value.id)

        def scan_stmts(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested scopes get their own scan
                if isinstance(stmt, (ast.If, ast.While)):
                    scan_expr(stmt.test)
                    scan_stmts(stmt.body)
                    scan_stmts(stmt.orelse)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if not scan_expr(stmt.iter):
                        # Iterating a handle container binds the loop
                        # variable to a handle inside the body.
                        if (
                            isinstance(stmt.iter, ast.Name)
                            and stmt.iter.id in containers
                            and isinstance(stmt.target, ast.Name)
                        ):
                            tracked.add(stmt.target.id)
                    scan_stmts(stmt.body)
                    scan_stmts(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        scan_expr(item.context_expr)
                    scan_stmts(stmt.body)
                elif isinstance(stmt, ast.Try):
                    scan_stmts(stmt.body)
                    for handler in stmt.handlers:
                        scan_stmts(handler.body)
                    scan_stmts(stmt.orelse)
                    scan_stmts(stmt.finalbody)
                else:
                    yielded = scan_expr(stmt)
                    if not yielded:
                        if isinstance(stmt, ast.Assign):
                            update_assign(stmt)
                        elif isinstance(stmt, ast.Expr):
                            update_expr_stmt(stmt.value)

        scan_stmts(func.body)

    # -- QL108 ----------------------------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "sync"
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "ctx"
        ):
            self.add(
                node,
                "QL108",
                "ctx.sync() token discarded; write `yield ctx.sync()` or the "
                "phase never ends",
            )
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", model_scope: Optional[bool] = None
) -> List[Finding]:
    """Lint one module's source; *model_scope* None infers from *path*."""
    if model_scope is None:
        model_scope = is_model_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 1, exc.offset or 0, "QL000",
                    f"syntax error: {exc.msg}")
        ]
    linter = _FileLinter(path, model_scope)
    linter.visit(tree)
    suppressed = _suppressions(source)
    out = []
    for finding in linter.findings:
        codes = suppressed.get(finding.line)
        if codes is not None and (codes == _ALL or finding.code in codes):
            continue
        out.append(finding)
    out.sort(key=lambda f: (f.line, f.col, f.code))
    return out


def lint_file(path: Union[str, Path], model_scope: Optional[bool] = None) -> List[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path), model_scope=model_scope)


def lint_paths(
    paths: Sequence[Union[str, Path]], model_scope: Optional[bool] = None
) -> List[Finding]:
    """Lint files and/or directory trees (``**/*.py``), in sorted order."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f, model_scope=model_scope))
    return findings


def _baseline_key(finding: Finding) -> str:
    """Line-insensitive identity used for baseline matching.

    Keyed on ``path:code:message`` so unrelated edits that shift line
    numbers do not invalidate a recorded baseline; duplicate keys are
    handled by count.
    """
    return f"{Path(finding.path).as_posix()}:{finding.code}:{finding.message}"


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Read a baseline file into a ``key -> count`` budget."""
    payload = json.loads(Path(path).read_text())
    counts = payload.get("findings", {})
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Record *findings* as the accepted baseline at *path*."""
    counts: Dict[str, int] = {}
    for f in findings:
        key = _baseline_key(f)
        counts[key] = counts.get(key, 0) + 1
    payload = {"version": 1, "findings": dict(sorted(counts.items()))}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against *baseline*.

    Each baseline key suppresses at most its recorded count, so adding
    a second instance of an already-baselined problem still fails.
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for f in findings:
        key = _baseline_key(f)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(f)
    return fresh, suppressed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.lint",
        description="Determinism / model-hygiene linter for the QSM reproduction.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to report"
    )
    parser.add_argument(
        "--model",
        action="store_true",
        help="treat every file as model-scope (applies QL101/QL102/QL107 everywhere)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE; only new findings fail "
        "(create FILE with --update-baseline)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="patch the fixable findings (QL103: wrap in sorted(...); QL106: "
        "None default + guard) in place, then report what remains",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.check.lint src/repro)")
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")

    if args.fix:
        from repro.check.fixes import fix_paths

        applied = fix_paths(args.paths, model_scope=True if args.model else None)
        touched = sorted({f.path for f in applied})
        print(
            f"[fixed {len(applied)} finding(s) in {len(touched)} file(s)]",
            file=sys.stderr,
        )
        for finding in applied:
            print(f"fixed {finding.format()}", file=sys.stderr)

    findings = lint_paths(args.paths, model_scope=True if args.model else None)
    if args.select:
        wanted = {c.strip().upper() for c in args.select.split(",") if c.strip()}
        findings = [f for f in findings if f.code in wanted]

    if args.baseline:
        if args.update_baseline:
            write_baseline(args.baseline, findings)
            print(
                f"[baseline: recorded {len(findings)} finding(s) in {args.baseline}]",
                file=sys.stderr,
            )
            return 0
        try:
            baseline = load_baseline(args.baseline)
        except OSError as exc:
            print(
                f"cannot read baseline {args.baseline}: {exc} "
                "(create it with --update-baseline)",
                file=sys.stderr,
            )
            return 2
        findings, suppressed = apply_baseline(findings, baseline)
        if suppressed:
            print(
                f"[baseline: suppressed {suppressed} pre-existing finding(s)]",
                file=sys.stderr,
            )

    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
