"""Symbolic algebra for the static phase analyzer.

The phase analyzer (:mod:`repro.check.phases`) abstracts every shared
memory index expression of an SPMD program into an **affine index
region** over the model symbols — ``p`` (processors), ``pid`` (this
processor), ``n`` (problem size), per-array block sizes, and opaque
auxiliaries (``s = params.samples_per_proc(n)``, ``stride = 1 << k``).
This module supplies the three layers that make those regions
decidable:

* :class:`Expr` — exact multivariate integer polynomials (the index
  arithmetic the programs actually perform is products and sums of
  symbols, e.g. ``d*p + pid`` or ``d*(p*s) + pid*s + j``);
* :class:`Region` — a set of indices ``{base + Σ coeff_i·v_i}`` with
  each quantifier ``v_i`` ranging over a symbolic interval, optionally
  excluding one value (the ubiquitous ``d ≠ pid``);
* a **prover** (:class:`ProofContext`) deciding nonnegativity of
  polynomials under interval bounds and affine guard conditions, from
  which region bounds checks, cross-processor disjointness (the
  block-decomposition + pid-shift argument) and injectivity (κ = 1)
  follow.

Everything is exact integer arithmetic — a successful proof holds for
**all** ``p ≥ 2`` (and all valid ``pid``, ``n``, …), which is what lets
the analyzer certify phase-safety once instead of once per
configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Expr",
    "QVar",
    "Region",
    "Guard",
    "ProofContext",
    "cross_pid_disjoint",
    "same_pid_disjoint",
    "region_injective",
    "region_within",
]

#: A monomial: sorted tuple of symbol names (repeats encode powers).
Mono = Tuple[str, ...]

#: Symbol reserved for "this processor" in every region expression.
PID = "pid"


@dataclass(frozen=True)
class Expr:
    """Exact multivariate polynomial with integer coefficients.

    Canonical form: sorted, coefficient-merged, zero-free term tuple —
    so structural equality is semantic equality (``s*(p-1)`` and
    ``p*s - s`` compare equal).
    """

    terms: Tuple[Tuple[Mono, int], ...] = ()

    # -- constructors ---------------------------------------------------
    @staticmethod
    def const(c: int) -> "Expr":
        return Expr(((tuple(), int(c)),)) if c else Expr()

    @staticmethod
    def sym(name: str) -> "Expr":
        return Expr((((name,), 1),))

    @staticmethod
    def _make(raw: Dict[Mono, int]) -> "Expr":
        terms = tuple(sorted((m, c) for m, c in raw.items() if c))
        return Expr(terms)

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other) -> "Expr":
        other = _as_expr(other)
        raw: Dict[Mono, int] = dict(self.terms)
        for m, c in other.terms:
            raw[m] = raw.get(m, 0) + c
        return Expr._make(raw)

    def __radd__(self, other) -> "Expr":
        return self.__add__(other)

    def __sub__(self, other) -> "Expr":
        return self + (-_as_expr(other))

    def __rsub__(self, other) -> "Expr":
        return _as_expr(other) + (-self)

    def __neg__(self) -> "Expr":
        return Expr(tuple((m, -c) for m, c in self.terms))

    def __mul__(self, other) -> "Expr":
        other = _as_expr(other)
        raw: Dict[Mono, int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                m = tuple(sorted(m1 + m2))
                raw[m] = raw.get(m, 0) + c1 * c2
        return Expr._make(raw)

    def __rmul__(self, other) -> "Expr":
        return self.__mul__(other)

    # -- queries --------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return all(m == () for m, _ in self.terms)

    @property
    def const_value(self) -> int:
        if not self.is_const:
            raise ValueError(f"{self.render()} is not constant")
        return self.terms[0][1] if self.terms else 0

    def symbols(self) -> Tuple[str, ...]:
        out = set()
        for m, _ in self.terms:
            out.update(m)
        return tuple(sorted(out))

    def degree_in(self, name: str) -> int:
        return max((m.count(name) for m, _ in self.terms), default=0)

    def coeff_of(self, name: str) -> Optional["Expr"]:
        """Coefficient of *name* when affine in it, else ``None``."""
        if self.degree_in(name) > 1:
            return None
        raw: Dict[Mono, int] = {}
        for m, c in self.terms:
            if name in m:
                rest = list(m)
                rest.remove(name)
                mono = tuple(rest)
                raw[mono] = raw.get(mono, 0) + c
        return Expr._make(raw)

    def drop(self, name: str) -> "Expr":
        """Terms of this polynomial not containing *name*."""
        return Expr(tuple((m, c) for m, c in self.terms if name not in m))

    def subst(self, name: str, value: "Expr") -> "Expr":
        """Substitute ``name := value`` (value may mention other symbols)."""
        out = Expr()
        for m, c in self.terms:
            term = Expr.const(c)
            for s in m:
                term = term * (value if s == name else Expr.sym(s))
            out = out + term
        return out

    def evaluate(self, env: Dict[str, int]) -> int:
        total = 0
        for m, c in self.terms:
            v = c
            for s in m:
                v *= env[s]
            total += v
        return total

    def split_divisible(self, mod: "Expr") -> Tuple["Expr", "Expr"]:
        """Split into ``(q, r)`` with ``self == q*mod + r``.

        *mod* must be a single-term polynomial (``c·mono``); ``q``
        collects the terms exactly divisible by it, ``r`` the rest.
        """
        if len(mod.terms) != 1:
            raise ValueError(f"modulus must be a single term, got {mod.render()}")
        mmono, mc = mod.terms[0]
        q_raw: Dict[Mono, int] = {}
        r_raw: Dict[Mono, int] = {}
        for m, c in self.terms:
            quotient_mono = _mono_divide(m, mmono)
            if quotient_mono is not None and c % mc == 0:
                q_raw[quotient_mono] = q_raw.get(quotient_mono, 0) + c // mc
            else:
                r_raw[m] = r_raw.get(m, 0) + c
        return Expr._make(q_raw), Expr._make(r_raw)

    def render(self) -> str:
        if not self.terms:
            return "0"
        parts: List[str] = []
        for m, c in self.terms:
            body = "*".join(m)
            if not m:
                frag = str(abs(c))
            elif abs(c) == 1:
                frag = body
            else:
                frag = f"{abs(c)}*{body}"
            if not parts:
                parts.append(frag if c > 0 else f"-{frag}")
            else:
                parts.append(f"+ {frag}" if c > 0 else f"- {frag}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Expr({self.render()})"


def _as_expr(x) -> Expr:
    if isinstance(x, Expr):
        return x
    if isinstance(x, int):
        return Expr.const(x)
    raise TypeError(f"cannot coerce {x!r} to Expr")


def _mono_divide(m: Mono, by: Mono) -> Optional[Mono]:
    """``m / by`` as multisets, or ``None`` when not divisible."""
    rest = list(m)
    for s in by:
        if s not in rest:
            return None
        rest.remove(s)
    return tuple(rest)


ZERO = Expr()
ONE = Expr.const(1)


# ----------------------------------------------------------------------
# Regions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QVar:
    """One quantifier of a region: ``coeff·v`` with ``v ∈ [lo, hi]``,
    optionally excluding ``v == exclude`` (the ``d ≠ pid`` pattern)."""

    name: str
    coeff: Expr
    lo: Expr
    hi: Expr
    exclude: Optional[Expr] = None


@dataclass(frozen=True)
class Region:
    """The index set ``{ base + Σ coeff_i·v_i  :  lo_i ≤ v_i ≤ hi_i }``."""

    base: Expr = ZERO
    qvars: Tuple[QVar, ...] = ()

    def shift(self, e: Expr) -> "Region":
        return replace(self, base=self.base + e)

    def scale(self, e: Expr) -> "Region":
        return Region(
            base=self.base * e,
            qvars=tuple(replace(v, coeff=v.coeff * e) for v in self.qvars),
        )

    def merge(self, other: "Region") -> "Region":
        """Pointwise sum (the ``x[:, None] + arange(s)`` outer pattern)."""
        return Region(base=self.base + other.base, qvars=self.qvars + other.qvars)

    def count(self) -> Expr:
        """Cardinality, assuming quantifier values are pairwise distinct
        (injectivity is proven separately where it matters)."""
        total = ONE
        for v in self.qvars:
            width = v.hi - v.lo + 1
            if v.exclude is not None:
                width = width - 1
            total = total * width
        return total

    def value_expr(self) -> Expr:
        """The region's generic element, quantifiers as free symbols."""
        e = self.base
        for v in self.qvars:
            e = e + v.coeff * Expr.sym(v.name)
        return e

    def rename_pid(self, new: str) -> "Region":
        return Region(
            base=self.base.subst(PID, Expr.sym(new)),
            qvars=tuple(
                QVar(
                    v.name,
                    v.coeff.subst(PID, Expr.sym(new)),
                    v.lo.subst(PID, Expr.sym(new)),
                    v.hi.subst(PID, Expr.sym(new)),
                    None if v.exclude is None else v.exclude.subst(PID, Expr.sym(new)),
                )
                for v in self.qvars
            ),
        )

    def render(self) -> str:
        if not self.qvars:
            return f"{{{self.base.render()}}}"
        body = self.value_expr().render()
        quals = []
        for v in self.qvars:
            q = f"{v.lo.render()}<={v.name}<={v.hi.render()}"
            if v.exclude is not None:
                q += f", {v.name}!={v.exclude.render()}"
            quals.append(q)
        return f"{{{body} : {'; '.join(quals)}}}"


@dataclass(frozen=True)
class Guard:
    """An affine path condition: ``expr == 0`` or ``expr >= 0``."""

    expr: Expr
    op: str  # "eq0" | "ge0"

    def pinned_pid(self) -> Optional[int]:
        """The constant this guard pins ``pid`` to, if it is ``pid == c``."""
        if self.op != "eq0":
            return None
        coeff = self.expr.coeff_of(PID)
        if coeff is None or not coeff.is_const or abs(coeff.const_value) != 1:
            return None
        rest = self.expr.drop(PID)
        if not rest.is_const:
            return None
        return -rest.const_value * coeff.const_value

    def rename_pid(self, new: str) -> "Guard":
        return Guard(self.expr.subst(PID, Expr.sym(new)), self.op)

    def render(self) -> str:
        return f"{self.expr.render()} {'==' if self.op == 'eq0' else '>='} 0"


# ----------------------------------------------------------------------
# The prover
# ----------------------------------------------------------------------
@dataclass
class ProofContext:
    """Decides ``e >= 0`` under interval bounds and affine conditions.

    *bounded* maps a symbol to its inclusive symbolic range (quantifier
    variables, ``pid`` renamings); *lower_bounds* gives the global
    integer floor of each base symbol (``p ≥ 2``, ``s ≥ 1``, …);
    *conditions* are extra facts ``expr ≥ 0`` (path guards, declared
    assumptions) the prover may subtract.

    The procedure is sound and deliberately incomplete: eliminate
    bounded variables at their interval endpoints (valid because every
    expression the analyzer builds is affine in them), then shift each
    base symbol by its floor and accept when every coefficient of the
    expanded polynomial is nonnegative; on failure, retry after
    subtracting a known-nonnegative condition (depth-limited).
    """

    bounded: Dict[str, Tuple[Expr, Expr]] = field(default_factory=dict)
    lower_bounds: Dict[str, int] = field(default_factory=dict)
    conditions: List[Expr] = field(default_factory=list)
    #: Default floor for symbols not listed in *lower_bounds*.
    default_floor: int = 0

    def child(self, **kw) -> "ProofContext":
        out = ProofContext(
            bounded=dict(self.bounded),
            lower_bounds=dict(self.lower_bounds),
            conditions=list(self.conditions),
            default_floor=self.default_floor,
        )
        for k, v in kw.items():
            getattr(out, k).update(v) if isinstance(v, dict) else setattr(out, k, v)
        return out

    def with_qvars(self, qvars: Iterable[QVar]) -> "ProofContext":
        out = self.child()
        for v in qvars:
            out.bounded[v.name] = (v.lo, v.hi)
        return out

    def with_guards(self, guards: Iterable[Guard]) -> "ProofContext":
        out = self.child()
        for g in guards:
            if g.op == "ge0":
                out.conditions.append(g.expr)
            else:  # eq0: both directions are usable facts
                out.conditions.append(g.expr)
                out.conditions.append(-g.expr)
        return out

    # ------------------------------------------------------------------
    def prove_nonneg(self, e: Expr, _depth: int = 2) -> bool:
        if self._nonneg_core(e):
            return True
        if _depth <= 0:
            return False
        for cond in self.conditions:
            if self.prove_nonneg(e - cond, _depth - 1):
                return True
        return False

    def prove_pos(self, e: Expr) -> bool:
        return self.prove_nonneg(e - 1)

    def prove_zero(self, e: Expr) -> bool:
        return not e.terms

    # ------------------------------------------------------------------
    def _nonneg_core(self, e: Expr) -> bool:
        # 1. eliminate bounded symbols at their interval endpoints.
        for name in e.symbols():
            if name in self.bounded:
                if e.degree_in(name) > 1:
                    return False
                lo, hi = self.bounded[name]
                return self._nonneg_core(e.subst(name, lo)) and self._nonneg_core(
                    e.subst(name, hi)
                )
        # 2. shift every base symbol by its integer floor; all-nonneg
        #    coefficients of the shifted polynomial prove nonnegativity.
        for name in e.symbols():
            floor = self.lower_bounds.get(name, self.default_floor)
            e = e.subst(name, Expr.sym(name) + floor)
        return all(c >= 0 for _, c in e.terms)

    # ------------------------------------------------------------------
    def corner_exprs(self, e: Expr, names: Sequence[str]) -> List[Expr]:
        """*e* at every endpoint combination of the given bounded vars."""
        names = [n for n in names if n in e.symbols()]
        out = [e]
        for name in names:
            lo, hi = self.bounded[name]
            nxt: List[Expr] = []
            for cur in out:
                if cur.degree_in(name) == 0:
                    nxt.append(cur)
                else:
                    nxt.append(cur.subst(name, lo))
                    nxt.append(cur.subst(name, hi))
            out = nxt
        return out


# ----------------------------------------------------------------------
# Region-level decisions
# ----------------------------------------------------------------------
def region_within(region: Region, extent: Expr, ctx: ProofContext) -> bool:
    """Prove ``region ⊆ [0, extent)`` (the QSA004 bounds obligation)."""
    local = ctx.with_qvars(region.qvars)
    e = region.value_expr()
    names = [v.name for v in region.qvars]
    for corner in local.corner_exprs(e, names):
        if not local.prove_nonneg(corner):
            return False
        if not local.prove_nonneg(extent - 1 - corner):
            return False
    return True


def region_injective(region: Region, ctx: ProofContext) -> bool:
    """Prove distinct quantifier assignments hit distinct indices.

    Recursive span argument: a quantifier whose coefficient strictly
    dominates the combined span of the remaining quantifiers separates
    the region into non-overlapping copies of the remainder.
    """
    qvars = list(region.qvars)

    def spans(rest: List[QVar]) -> Expr:
        total = ZERO
        for v in rest:
            total = total + v.coeff * (v.hi - v.lo)
        return total

    def recurse(vs: List[QVar]) -> bool:
        if not vs:
            return True
        for i, v in enumerate(vs):
            rest = vs[:i] + vs[i + 1 :]
            # coeff positive and > span of the rest
            if ctx.prove_pos(v.coeff) and ctx.prove_nonneg(
                v.coeff - 1 - spans(rest)
            ):
                if recurse(rest):
                    return True
        return False

    # Spans must be evaluated with quantifier bounds known.
    ctx = ctx.with_qvars(qvars)
    return recurse(qvars)


def _pid_shift_disjoint(
    e1: Expr, e2: Expr, pid1: str, pid2: str, names: Sequence[str], ctx: ProofContext
) -> bool:
    """Disjointness via the pid-shift argument.

    When both expressions move with ``pid`` at the same positive rate
    ``a`` and the pid-independent parts differ by less than ``a``,
    distinct pids give values in disjoint residue windows.
    """
    a1, a2 = e1.coeff_of(pid1), e2.coeff_of(pid2)
    if a1 is None or a2 is None or a1 != a2:
        return False
    if not ctx.prove_pos(a1):
        return False
    w = e1.drop(pid1) - e2.drop(pid2)
    for corner in ctx.corner_exprs(w, names):
        if not ctx.prove_nonneg(a1 - 1 - corner):  # w <= a-1
            return False
        if not ctx.prove_nonneg(corner + a1 - 1):  # w >= -(a-1)
            return False
    return True


def _interval_separated(
    e1: Expr, e2: Expr, names: Sequence[str], ctx: ProofContext
) -> bool:
    """Disjointness by pure interval separation (all corners ordered)."""
    for lhs, rhs in ((e1, e2), (e2, e1)):
        diff = lhs - rhs - 1
        if all(ctx.prove_nonneg(c) for c in ctx.corner_exprs(diff, names)):
            return True
    return False


def _exclusion_disjoint(
    e1: Expr,
    e2: Expr,
    qvars: Sequence[QVar],
    names: Sequence[str],
    ctx: ProofContext,
) -> bool:
    """Disjointness via an excluded quantifier value: when
    ``e1 - e2 == a·(v - excl)`` with ``a > 0`` and ``v != excl``,
    the difference can never vanish."""
    diff = e1 - e2
    for v in qvars:
        if v.exclude is None:
            continue
        a = diff.coeff_of(v.name)
        if a is None or not a.terms:
            continue
        residue = diff - a * (Expr.sym(v.name) - v.exclude)
        if residue.terms:
            continue
        if ctx.prove_pos(a) or ctx.prove_pos(-a):
            return True
    return False


def _modulus_candidates(*regions: Region) -> List[Expr]:
    """Single-term candidate block sizes for residue decomposition."""
    seen: Dict[Tuple, Expr] = {}
    for region in regions:
        exprs = [v.coeff for v in region.qvars]
        exprs.extend(Expr(((m, c),)) for m, c in region.base.terms if m)
        for e in exprs:
            for m, c in e.terms:
                if not m:
                    continue
                cand = Expr(((m, abs(c)),))
                seen[cand.terms] = cand
                if abs(c) != 1:
                    unit = Expr(((m, 1),))
                    seen[unit.terms] = unit
    # Prefer larger moduli (more structure stripped into the quotient).
    return sorted(seen.values(), key=lambda e: (-len(e.terms[0][0]), e.terms))


def _decompose(e: Expr, mod: Expr, names: Sequence[str], ctx: ProofContext):
    """``e = q·mod + r`` with proof ``0 ≤ r ≤ mod-1``; None if unprovable."""
    q, r = e.split_divisible(mod)
    for corner in ctx.corner_exprs(r, names):
        if not ctx.prove_nonneg(corner):
            return None
        if not ctx.prove_nonneg(mod - 1 - corner):
            return None
    return q, r


def _exprs_disjoint(
    e1: Expr,
    e2: Expr,
    pid1: str,
    pid2: str,
    qvars: Sequence[QVar],
    names: Sequence[str],
    ctx: ProofContext,
    depth: int = 2,
) -> bool:
    """Core disjointness test on two generic-element expressions."""
    if _pid_shift_disjoint(e1, e2, pid1, pid2, names, ctx):
        return True
    if _interval_separated(e1, e2, names, ctx):
        return True
    if _exclusion_disjoint(e1, e2, qvars, names, ctx):
        return True
    if depth <= 0:
        return False
    # Residue decomposition: disjoint quotients or disjoint remainders
    # both separate the full values.  Candidate moduli come from the
    # quantifier coefficients as well as the value terms — the block
    # size of `{d*p + pid}` lives in d's coefficient, not in the base.
    for mod in _modulus_candidates(Region(base=e1, qvars=tuple(qvars)), Region(base=e2)):
        if not ctx.prove_pos(mod):
            continue
        d1 = _decompose(e1, mod, names, ctx)
        d2 = _decompose(e2, mod, names, ctx)
        if d1 is None or d2 is None:
            continue
        (q1, r1), (q2, r2) = d1, d2
        if (q1.terms or q2.terms) and (
            _exprs_disjoint(r1, r2, pid1, pid2, qvars, names, ctx, depth - 1)
            or _exprs_disjoint(q1, q2, pid1, pid2, qvars, names, ctx, depth - 1)
        ):
            return True
    return False


def _prepare_pair(
    r1: Region,
    g1: Sequence[Guard],
    r2: Region,
    g2: Sequence[Guard],
    base_ctx: ProofContext,
    pid1: str,
    pid2: str,
):
    """Rename pids apart, uniquify quantifiers, build the joint context."""
    r1 = r1.rename_pid(pid1)
    r2 = r2.rename_pid(pid2)

    def uniquify(region: Region, tag: str) -> Region:
        mapping = {v.name: f"{v.name}_{tag}" for v in region.qvars}
        base = region.base
        qvars = []
        for v in region.qvars:
            coeff, lo, hi = v.coeff, v.lo, v.hi
            excl = v.exclude
            for old, new in mapping.items():
                coeff = coeff.subst(old, Expr.sym(new))
                lo = lo.subst(old, Expr.sym(new))
                hi = hi.subst(old, Expr.sym(new))
                if excl is not None:
                    excl = excl.subst(old, Expr.sym(new))
            qvars.append(QVar(mapping[v.name], coeff, lo, hi, excl))
        for old, new in mapping.items():
            base = base.subst(old, Expr.sym(new))
        return Region(base=base, qvars=tuple(qvars))

    r1 = uniquify(r1, "a")
    r2 = uniquify(r2, "b")
    qvars = list(r1.qvars) + list(r2.qvars)
    p = Expr.sym("p")
    ctx = base_ctx.with_qvars(qvars)
    for pv in (pid1, pid2):
        ctx.bounded[pv] = (ZERO, p - 1)
    ctx = ctx.with_guards(
        [g.rename_pid(pid1) for g in g1] + [g.rename_pid(pid2) for g in g2]
    )
    names = [v.name for v in qvars] + [pid1, pid2]
    return r1, r2, qvars, names, ctx


def cross_pid_disjoint(
    r1: Region,
    g1: Sequence[Guard],
    r2: Region,
    g2: Sequence[Guard],
    base_ctx: ProofContext,
) -> bool:
    """Prove the two accesses never touch a common cell from two
    *distinct* processors (the QSA001/QSA002 obligation)."""
    c1 = next((c for g in g1 if (c := g.pinned_pid()) is not None), None)
    c2 = next((c for g in g2 if (c := g.pinned_pid()) is not None), None)
    if c1 is not None and c2 is not None and c1 == c2:
        return True  # both accesses live on one fixed pid: no distinct pair
    r1p, r2p, qvars, names, ctx = _prepare_pair(r1, g1, r2, g2, base_ctx, "pid_a", "pid_b")
    return _exprs_disjoint(
        r1p.value_expr(), r2p.value_expr(), "pid_a", "pid_b", qvars, names, ctx
    )


def same_pid_disjoint(
    r1: Region,
    g1: Sequence[Guard],
    r2: Region,
    g2: Sequence[Guard],
    base_ctx: ProofContext,
) -> bool:
    """Prove two accesses of the *same* processor are disjoint (the κ=1
    obligation between distinct enqueues of one pid)."""
    # Keep pid shared: rename both sides to the same symbol.
    r1p, r2p, qvars, names, ctx = _prepare_pair(r1, g1, r2, g2, base_ctx, PID, PID)
    names = [n for n in names if n != PID] + [PID]
    e1, e2 = r1p.value_expr(), r2p.value_expr()
    if _interval_separated(e1, e2, names, ctx):
        return True
    return _exclusion_disjoint(e1, e2, qvars, names, ctx) or _exprs_disjoint(
        e1, e2, PID, PID, qvars, names, ctx
    )
