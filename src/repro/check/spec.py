"""Phase-safety annotations for SPMD programs.

:func:`phase_spec` attaches a small declarative contract to a
``*_program`` generator so the static phase analyzer
(:mod:`repro.check.phases`) knows what the runtime would only discover
dynamically:

* the symbolic **extent** of each shared-array *parameter* (arrays the
  program allocates itself are picked up from the ``ctx.alloc`` call);
* the declared **contention bound** κ the program promises per phase
  (``kappa="1"`` for fully slotted communication) — exceeding it is a
  QSA003 finding;
* extra **assumptions** relating the symbols (``"n >= p"``), usable by
  the analyzer's inequality prover;
* the **algo** key tying the program to its closed-form profile source
  in :mod:`repro.predict.sources` for the symbolic cost cross-check.

The decorator is deliberately inert at runtime: it stores the spec on
``func.__phase_spec__`` and returns the function unchanged, so
annotated programs import and run with zero overhead and no dependency
on the analyzer.

Example::

    @phase_spec(arrays={"A": "n", "R": "n", "T": "p*p"},
                kappa="1", algo="prefix")
    def prefix_sums_program(ctx, A, R, T):
        ...
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = ["phase_spec", "PhaseSpec"]


class PhaseSpec:
    """The declarative contract attached by :func:`phase_spec`."""

    __slots__ = ("arrays", "kappa", "assume", "algo")

    def __init__(
        self,
        arrays: Optional[Dict[str, str]] = None,
        kappa: Optional[str] = None,
        assume: Sequence[str] = (),
        algo: Optional[str] = None,
    ) -> None:
        self.arrays = dict(arrays or {})
        self.kappa = kappa
        self.assume = tuple(assume)
        self.algo = algo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PhaseSpec(arrays={self.arrays!r}, kappa={self.kappa!r}, "
            f"assume={self.assume!r}, algo={self.algo!r})"
        )


def phase_spec(
    arrays: Optional[Dict[str, str]] = None,
    kappa: Optional[str] = None,
    assume: Sequence[str] = (),
    algo: Optional[str] = None,
):
    """Annotate an SPMD program for the static phase analyzer.

    ``arrays`` maps shared-array parameter names to extent expressions
    over ``p``/``n`` (e.g. ``{"T": "p*p"}``); ``kappa`` is the declared
    per-phase contention bound as an expression (``"1"``, ``"p"``) or
    ``None`` to skip the QSA003 check; ``assume`` lists inequality
    facts ``"<expr> >= <expr>"`` the prover may rely on; ``algo`` names
    the :mod:`repro.predict.sources` entry to cross-check against.
    """
    spec = PhaseSpec(arrays=arrays, kappa=kappa, assume=assume, algo=algo)

    def decorate(func):
        func.__phase_spec__ = spec
        return func

    return decorate
