"""Reproduction of *Experimental Evaluation of QSM, a Simple
Shared-Memory Model* (Grayson, Dahlin, Ramachandran; UTCS TR98-21 /
IPPS 1999).

Top-level packages:

* :mod:`repro.core` — QSM/s-QSM/BSP/LogP cost models, Chernoff
  machinery, and the per-algorithm prediction lines;
* :mod:`repro.qsmlib` — the bulk-synchronous shared-memory library
  (get/put/sync) and the SPMD program driver;
* :mod:`repro.machine` — the simulated multiprocessor (node cost
  model, parametric network) standing in for Armadillo;
* :mod:`repro.msg` — message passing and tree collectives on the
  simulated network;
* :mod:`repro.sim` — the deterministic discrete-event kernel;
* :mod:`repro.algorithms` — prefix sums, sample sort, list ranking
  (QSM programs) plus sequential baselines;
* :mod:`repro.membank` — the §4 memory-bank contention microbenchmark;
* :mod:`repro.experiments` — one regeneration target per paper
  table/figure;
* :mod:`repro.analysis` — error metrics, crossovers, extrapolation.
"""

__version__ = "1.0.0"
