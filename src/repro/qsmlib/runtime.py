"""The sync engine: one bulk-synchronous exchange in the DES.

Implements §3.1.2's ``sync()``: plan distribution, contention-avoiding
data exchange (puts + get requests, then get replies), and the closing
tree barrier — all as per-node simulation processes so that per-message
overhead ``o``, gap ``g`` and latency ``l`` act where they really act,
and pipelining/batching emerge from the NIC model rather than being
assumed.

Message categories within one sync, in exchange order:

1. ``plan`` — each node tells every other node how many put words and
   get-request words are coming (one small message per ordered pair);
2. ``data`` — one aggregated message per ordered pair carrying all put
   records (header + payload per word) and get-request records;
3. ``reply`` — one aggregated message per ordered pair carrying get
   replies (header + payload per word);
4. ``bar`` — binary-tree barrier with per-hop software cycles.

Marshalling and unmarshalling charge CPU cycles per record plus buffer
copies through the node's cache model — this software layer is what
lifts the observed gap from Table 3's 3 cycles/byte hardware figure to
the measured ~35 (put) and ~287 (get) cycles/byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.machine.cluster import Machine
from repro.msg.collectives import CONTROL_BYTES, _children, _parent
from repro.msg.mp import Endpoint
from repro.qsmlib.config import SoftwareConfig, SyncPath
from repro.qsmlib.epoch import execute_epoch_phase
from repro.qsmlib.plan import PhaseTraffic


@dataclass
class PhaseTiming:
    """DES timestamps of one executed phase."""

    start: float
    ready: float
    end: float


class SyncEngine:
    """Executes phases on one machine; keeps a running sync counter."""

    def __init__(
        self,
        machine: Machine,
        endpoints: Sequence[Endpoint],
        software: SoftwareConfig,
    ) -> None:
        if len(endpoints) != machine.p:
            raise ValueError("one endpoint per node required")
        self.machine = machine
        self.endpoints = endpoints
        self.sw = software
        self._seq = 0
        #: Set by the program driver when an armed sanitizer (or any
        #: future consumer of per-message events) needs the DES paths.
        self.require_message_fidelity = False
        #: Phases executed per sync path this engine's lifetime — how
        #: tests (and curious users) observe fallback decisions.
        self.path_counts = {path.value: 0 for path in SyncPath}

    # ------------------------------------------------------------------
    def execute_phase(
        self,
        traffic: PhaseTraffic,
        compute_cycles: np.ndarray,
        local_words: np.ndarray,
    ) -> PhaseTiming:
        """Run one phase: local compute, then the full sync protocol.

        ``compute_cycles[pid]`` is the local work charged before this
        sync; ``local_words[pid]`` are requests served without the
        network (they still cost library handling time).
        """
        sim = self.machine.sim
        p = self.machine.p
        seq = self._seq
        self._seq += 1

        if self._epoch_eligible():
            start, ready, end = execute_epoch_phase(
                self.machine, self.sw, traffic, compute_cycles, local_words
            )
            self.path_counts["epoch"] += 1
            # obs is None whenever the epoch path runs, so the metrics
            # block below is unreachable here — return directly.
            return PhaseTiming(start=start, ready=ready, end=end)

        if (
            self.sw.fast_sync
            and not self.sw.send_pacing_cycles
            and self.machine.network.supports_fast_path
        ):
            self.path_counts["fast"] += 1
        else:
            self.path_counts["slow"] += 1
        start = sim.now
        ready_times = np.zeros(p)
        done_times = np.zeros(p)

        procs = [
            sim.process(
                self._node_proc(
                    pid,
                    seq,
                    traffic,
                    float(compute_cycles[pid]),
                    int(local_words[pid]),
                    ready_times,
                    done_times,
                )
            )
            for pid in range(p)
        ]
        sim.run()
        for proc in procs:
            if not proc.triggered:
                faults = self.machine.faults
                if faults is not None and faults.fatal is not None:
                    # A message exceeded its retransmit budget; the
                    # phase can never complete — surface the injected
                    # fault instead of a generic deadlock.
                    raise faults.fatal
                raise RuntimeError("sync deadlocked: a node never completed the phase")
            proc.value  # re-raise any node failure
        timing = PhaseTiming(start=start, ready=float(ready_times.max()), end=sim.now)
        obs = sim.obs
        if obs is not None:
            m = obs.metrics
            m.counter("qsm.syncs").inc()
            m.counter("qsm.phase.put.m_rw").inc(int(traffic.put_words.sum()))
            m.counter("qsm.phase.get.m_rw").inc(int(traffic.get_words.sum()))
            m.counter("qsm.phase.local.words").inc(int(traffic.local_words.sum()))
            m.histogram("qsm.phase.comm_cycles").record(timing.end - timing.ready)
            m.histogram("qsm.phase.total_cycles").record(timing.end - timing.start)
        return timing

    # ------------------------------------------------------------------
    def _epoch_eligible(self) -> bool:
        """Whether this phase may run on the vectorized epoch kernel.

        Every condition is a feature that needs per-message events: send
        pacing interleaves timeouts between chunks; finite receive
        buffers and network fault plans (``supports_fast_path``) depend
        on instantaneous per-message state; observability, tracing and
        the sanitizer consume per-event callbacks.  Any of them degrades
        epoch to the DES fast path (or, transitively, to the oracle) —
        see the path-selection matrix in docs/PERFORMANCE.md.
        """
        sim = self.machine.sim
        return (
            self.sw.sync_path is SyncPath.EPOCH
            and not self.sw.send_pacing_cycles
            and self.machine.network.supports_fast_path
            and sim.obs is None
            and sim._step_hook is None
            and not self.require_message_fidelity
        )

    # ------------------------------------------------------------------
    def _node_proc(
        self,
        pid: int,
        seq: int,
        traffic: PhaseTraffic,
        compute: float,
        local_words: int,
        ready_times: np.ndarray,
        done_times: np.ndarray,
    ):
        sim = self.machine.sim
        sw = self.sw
        ep = self.endpoints[pid]
        cpu = self.machine.cpus[pid]
        p = self.machine.p
        # One load + branch per segment when observability is off; the
        # segments partition [phase start, node done] exactly, which is
        # what lets the exported trace reconcile against PhaseRecord
        # timings (see docs/OBSERVABILITY.md).
        obs = sim.obs
        if obs is not None:
            phase_span = obs.begin("qsm.phase", pid, phase=seq)
            seg = obs.begin("qsm.compute", pid)

        # -- local computation of the phase body -------------------------
        faults = self.machine.faults
        if faults is not None:
            compute += faults.compute_penalty(pid, compute)
        if compute > 0:
            yield sim.timeout(compute)
        ready_times[pid] = sim.now

        # -- sync entry: bookkeeping + locally-served requests ------------
        if obs is not None:
            obs.end(seg)
            seg = obs.begin("qsm.entry", pid, local_words=local_words)
        overhead = sw.sync_fixed_cycles + local_words * (
            sw.marshal_record_cycles + cpu.copy_cycles(sw.word_bytes, resident=True)
        )
        if overhead > 0:
            yield sim.timeout(overhead)

        if p == 1:
            if obs is not None:
                obs.end(seg)
                obs.end(phase_span)
            done_times[pid] = sim.now
            return

        # Batched sends are timing-equivalent only when pacing is off
        # (pacing interleaves timeouts between chunks) and the network's
        # overrun model is disabled; fast_sync=False keeps the
        # per-message path as the oracle.
        fast = sw.fast_sync and not sw.send_pacing_cycles and ep.network.supports_fast_path

        # -- 1. plan exchange ---------------------------------------------
        if obs is not None:
            obs.end(seg)
            seg = obs.begin("qsm.plan", pid)
        peers = self._peer_order(pid, p)
        plan_bytes = sw.message_header_bytes + sw.plan_entry_bytes
        if fast:
            yield from ep.send_batch([(dst, plan_bytes) for dst in peers], ("plan", seq))
            yield from ep.recv_batch(p - 1, tag=("plan", seq))
        else:
            for dst in peers:
                yield from ep.send(dst, ("plan", seq), plan_bytes)
            for _ in range(1, p):
                yield from ep.recv(tag=("plan", seq))

        # -- 2. data messages: puts + get requests --------------------------
        if obs is not None:
            obs.end(seg)
            seg = obs.begin(
                "qsm.data",
                pid,
                put_words=int(traffic.put_words[pid].sum()),
                get_req_words=int(traffic.get_words[pid].sum()),
            )
        if fast:
            # One analytic burst for the whole stage: per-destination
            # marshal time rides along as a gap before that
            # destination's first chunk (the NIC is idle during
            # marshalling either way, and the node generator has nothing
            # to do between, so the timeline is identical).
            entries = []
            for dst in peers:
                w_put = int(traffic.put_words[pid, dst])
                w_req = int(traffic.get_words[pid, dst])
                if w_put == 0 and w_req == 0:
                    continue
                gap = (w_put + w_req) * sw.marshal_record_cycles + cpu.copy_cycles(
                    w_put * sw.word_bytes
                )
                wire = sw.put_wire_bytes(w_put) + sw.get_request_wire_bytes(w_req)
                for chunk in sw.chunk_sizes(wire):
                    entries.append((dst, sw.message_header_bytes + chunk, gap))
                    gap = 0.0
            if entries:
                yield from ep.send_batch(entries, ("data", seq))
        else:
            for dst in peers:
                w_put = int(traffic.put_words[pid, dst])
                w_req = int(traffic.get_words[pid, dst])
                if w_put == 0 and w_req == 0:
                    continue
                marshal = (w_put + w_req) * sw.marshal_record_cycles + cpu.copy_cycles(
                    w_put * sw.word_bytes
                )
                yield sim.timeout(marshal)
                wire = sw.put_wire_bytes(w_put) + sw.get_request_wire_bytes(w_req)
                for chunk in sw.chunk_sizes(wire):
                    if sw.send_pacing_cycles:
                        yield sim.timeout(sw.send_pacing_cycles)
                    yield from ep.send(dst, ("data", seq), sw.message_header_bytes + chunk)

        expected_chunks = 0
        unmarshal_total = 0.0
        for src in traffic.expected_data_sources(pid):
            w_put = int(traffic.put_words[src, pid])
            w_req = int(traffic.get_words[src, pid])
            wire = sw.put_wire_bytes(w_put) + sw.get_request_wire_bytes(w_req)
            expected_chunks += len(sw.chunk_sizes(wire))
            unmarshal_total += (
                (w_put + w_req) * sw.unmarshal_record_cycles
                + cpu.copy_cycles(w_put * sw.word_bytes)
                + w_req * sw.get_service_cycles
            )
        if fast:
            if expected_chunks:
                yield from ep.recv_batch(expected_chunks, tag=("data", seq))
        else:
            for _ in range(expected_chunks):
                yield from ep.recv(tag=("data", seq))
        if unmarshal_total:
            yield sim.timeout(unmarshal_total)

        # -- 3. get replies -------------------------------------------------
        if obs is not None:
            obs.end(seg)
            seg = obs.begin(
                "qsm.reply", pid, reply_words=int(traffic.get_words[:, pid].sum())
            )
        if fast:
            entries = []
            for dst in peers:
                w = int(traffic.get_words[dst, pid])
                if w == 0:
                    continue
                gap = w * sw.marshal_record_cycles + cpu.copy_cycles(w * sw.word_bytes)
                for chunk in sw.chunk_sizes(sw.get_reply_wire_bytes(w)):
                    entries.append((dst, sw.message_header_bytes + chunk, gap))
                    gap = 0.0
            if entries:
                yield from ep.send_batch(entries, ("reply", seq))
        else:
            for dst in peers:
                w = int(traffic.get_words[dst, pid])
                if w == 0:
                    continue
                marshal = w * sw.marshal_record_cycles + cpu.copy_cycles(w * sw.word_bytes)
                yield sim.timeout(marshal)
                for chunk in sw.chunk_sizes(sw.get_reply_wire_bytes(w)):
                    if sw.send_pacing_cycles:
                        yield sim.timeout(sw.send_pacing_cycles)
                    yield from ep.send(dst, ("reply", seq), sw.message_header_bytes + chunk)

        expected_chunks = 0
        unmarshal_total = 0.0
        for src in traffic.expected_reply_sources(pid):
            w = int(traffic.get_words[pid, src])
            expected_chunks += len(sw.chunk_sizes(sw.get_reply_wire_bytes(w)))
            unmarshal_total += w * sw.unmarshal_record_cycles + cpu.copy_cycles(
                w * sw.word_bytes
            )
        if fast:
            if expected_chunks:
                yield from ep.recv_batch(expected_chunks, tag=("reply", seq))
        else:
            for _ in range(expected_chunks):
                yield from ep.recv(tag=("reply", seq))
        if unmarshal_total:
            yield sim.timeout(unmarshal_total)

        # -- 4. closing barrier ----------------------------------------------
        if obs is not None:
            obs.end(seg)
            seg = obs.begin("qsm.barrier", pid)
        yield from self._barrier(ep, p, ("bar", seq), fast)
        if obs is not None:
            obs.end(seg)
            obs.end(phase_span)
        done_times[pid] = sim.now

    def _peer_order(self, pid: int, p: int):
        """Destination order for this node's sends (see
        :attr:`~repro.qsmlib.config.SoftwareConfig.exchange_schedule`)."""
        if self.sw.exchange_schedule == "staggered":
            return [(pid + r) % p for r in range(1, p)]
        return [d for d in range(p) if d != pid]

    def _barrier(self, ep: Endpoint, p: int, seq, fast: bool = False) -> object:
        """Tree barrier with software per-hop cycles (the measured L)."""
        sim = self.machine.sim
        hop = self.sw.barrier_hop_cycles
        pid = ep.pid
        up = (seq, "up")
        down = (seq, "down")
        for child in _children(pid, p):
            yield from ep.recv(src=child, tag=up)
            if hop:
                yield sim.timeout(hop)
        if pid != 0:
            if hop:
                yield sim.timeout(hop)
            if fast:
                yield from ep.send_batch([(_parent(pid), CONTROL_BYTES)], up)
            else:
                yield from ep.send(_parent(pid), up, CONTROL_BYTES)
            yield from ep.recv(src=_parent(pid), tag=down)
            if hop:
                yield sim.timeout(hop)
        for child in _children(pid, p):
            if hop:
                yield sim.timeout(hop)
            if fast:
                yield from ep.send_batch([(child, CONTROL_BYTES)], down)
            else:
                yield from ep.send(child, down, CONTROL_BYTES)
