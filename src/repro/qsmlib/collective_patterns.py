"""Reusable QSM communication patterns.

The appendix algorithms all build on the same few moves: *share one
word with everyone by remote puts* (prefix totals, sample-sort bucket
totals, list-ranking survivor counts), *compute offsets from the shared
words*, and *ship a block to one owner*.  This module packages them as
first-class program building blocks so user algorithms don't re-derive
the p×p slot conventions.

All helpers follow the bulk-synchronous discipline: values *posted* in
one phase are *readable* after the next ``yield ctx.sync()``.

Example — computing every processor's output offset in two phases::

    def program(ctx, data):
        board = AllShareBoard.alloc(ctx, "totals")
        yield ctx.sync()                     # registration
        board.post(ctx, len(my_part))
        yield ctx.sync()                     # exchange
        offset = board.exclusive_prefix(ctx) # Σ of lower-pid values
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.qsmlib.context import QSMContext, SharedArrayRef


class AllShareBoard:
    """A p×p blocked exchange board: all-to-all sharing of one word.

    Processor ``d`` owns slots ``d·p .. d·p+p−1``; ``post`` writes the
    caller's value into its slot at *every* processor (p−1 remote puts
    + 1 local write — the single-phase broadcast trick of the appendix
    prefix algorithm).  After the sync, ``read`` returns all p values
    from node-local memory at zero communication cost.
    """

    def __init__(self, ref: SharedArrayRef) -> None:
        self._ref = ref

    @classmethod
    def alloc(cls, ctx: QSMContext, name: str) -> "AllShareBoard":
        """Collectively allocate a board (usable after the next sync)."""
        return cls(ctx.alloc(f"board.{name}", ctx.p * ctx.p))

    # ------------------------------------------------------------------
    def post(self, ctx: QSMContext, value: int) -> None:
        """Share *value* with every processor (visible after the sync)."""
        p, pid = ctx.p, ctx.pid
        peers = np.array([d for d in range(p) if d != pid], dtype=np.int64)
        if peers.size:
            ctx.put(
                self._ref.array,
                peers * p + pid,
                np.full(peers.size, int(value), dtype=np.int64),
            )
        ctx.local(self._ref.array)[pid] = int(value)

    def read(self, ctx: QSMContext) -> np.ndarray:
        """All p posted values, indexed by pid (node-local read)."""
        return ctx.local(self._ref.array).copy()

    def total(self, ctx: QSMContext) -> int:
        """Sum of all posted values."""
        return int(ctx.local(self._ref.array).sum())

    def exclusive_prefix(self, ctx: QSMContext) -> int:
        """Sum of the values posted by lower-numbered processors —
        the output-placement offset every appendix algorithm needs."""
        return int(ctx.local(self._ref.array)[: ctx.pid].sum())

    def maximum(self, ctx: QSMContext) -> int:
        """Max of all posted values (e.g. a measured skew)."""
        return int(ctx.local(self._ref.array).max())

    def free(self, ctx: QSMContext) -> None:
        ctx.free(self._ref)


def ship_block_to(
    ctx: QSMContext,
    arr,
    owner_offset: int,
    values: np.ndarray,
) -> None:
    """Write *values* contiguously into *arr* starting at a global
    offset (typically computed from an :class:`AllShareBoard`
    exclusive prefix).  Local portions short-circuit automatically."""
    values = np.asarray(values)
    if values.size:
        ctx.put_range(arr, owner_offset, values)


def scatter_from_root(ctx: QSMContext, arr, block_values: Optional[np.ndarray]) -> None:
    """Processor 0 writes one block per processor into a blocked array;
    everyone else passes ``None``.  Readable locally after the sync."""
    if ctx.pid != 0:
        if block_values is not None:
            raise ValueError("only processor 0 supplies scatter data")
        return
    block_values = np.asarray(block_values)
    if block_values.shape[0] != ctx.p:
        raise ValueError(
            f"need one block per processor ({ctx.p}), got {block_values.shape[0]}"
        )
    flat = block_values.reshape(ctx.p, -1)
    block = arr.map.block
    if flat.shape[1] > block:
        raise ValueError(f"blocks of {flat.shape[1]} words exceed the array block ({block})")
    for d in range(ctx.p):
        ctx.put_range(arr, d * block, flat[d])
