"""The SPMD program driver.

:class:`QSMMachine` is the user-facing entry point: allocate shared
arrays, then :meth:`~QSMMachine.run` a program — a generator function
``program(ctx, **kwargs)`` that every simulated processor executes with
its own :class:`~repro.qsmlib.context.QSMContext`.

The driver advances all ``p`` program generators to their next
``yield ctx.sync()``, aggregates the phase's queued requests into a
communication plan, executes the exchange in the discrete-event
simulator (where ``g``, ``o``, ``l`` and the software layer act), then
applies the bulk-synchronous memory semantics and resumes the programs.
The result is a :class:`~repro.qsmlib.stats.RunResult` with per-phase
measurements — the raw material of every figure in §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro import check
from repro import faults as _faults
from repro.machine.cluster import Machine
from repro.machine.config import MachineConfig
from repro.msg.mp import make_endpoints
from repro.qsmlib.address_space import AddressSpace, SharedArray
from repro.qsmlib.config import SoftwareConfig
from repro.qsmlib.context import QSMContext, SharedArrayRef, SyncToken
from repro.qsmlib.costmodel import CommCostModel
from repro.qsmlib.layout import Layout
from repro.qsmlib.plan import (
    apply_phase_semantics,
    build_traffic,
    check_phase_semantics,
    compute_kappa,
)
from repro.qsmlib.runtime import SyncEngine
from repro.qsmlib.stats import PhaseRecord, RunResult
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class RunConfig:
    """Everything that parameterises one simulated run."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    software: SoftwareConfig = field(default_factory=SoftwareConfig)
    seed: int = 0
    #: Enforce §2 semantics (no read+write of one word in a phase).
    check_semantics: bool = True
    #: Record QSM's kappa each phase (costs one pass over touched words).
    track_kappa: bool = False


class SPMDError(RuntimeError):
    """The per-processor programs did not stay in lock-step."""


class QSMMachine:
    """A simulated QSM machine ready to run one program."""

    def __init__(self, config: Optional[RunConfig] = None) -> None:
        self.config = config or RunConfig()
        self.p = self.config.machine.p
        # The run seed salts the fault RNG streams so every sweep point
        # draws its own reproducible fault schedule.
        self.machine = Machine(self.config.machine, fault_salt=self.config.seed)
        self.space = AddressSpace(self.p, default_salt=self.config.seed)
        self.rngs = RngStreams(self.config.seed, self.p)
        self._endpoints = make_endpoints(self.machine.network)
        self._engine = SyncEngine(self.machine, self._endpoints, self.config.software)
        # Fetched once per machine; None when disarmed (the usual case),
        # so sanitizer support costs one attribute test per phase.
        self._sanitizer = check.active()
        # An armed sanitizer wants per-message fidelity from the engine;
        # the epoch kernel steps aside (degrading to the DES fast path)
        # rather than risk diverging from what the sanitizer replays.
        self._engine.require_message_fidelity = self._sanitizer is not None
        self._ran = False
        if self.machine.sim.obs is not None:
            # Observability itself forces the DES (epoch degrades to
            # fast), so the label names the path that actually runs.
            fast = "fast" if self.config.software.fast_sync else "oracle"
            self.machine.sim.obs.set_label(
                f"qsm p={self.p} seed={self.config.seed} sync={fast}"
            )

    # ------------------------------------------------------------------
    def allocate(
        self,
        name: str,
        n: int,
        layout: Layout = Layout.BLOCKED,
        dtype=np.int64,
    ) -> SharedArray:
        """Pre-register a shared array before the program starts.

        Use this for program inputs/outputs; temporaries should be
        allocated collectively inside the program via ``ctx.alloc``.
        """
        return self.space.allocate(name, n, layout=layout, dtype=dtype)

    def cost_model(self) -> CommCostModel:
        """The analytic communication cost model matching this machine."""
        return CommCostModel.for_machine(
            self.config.machine.network,
            self.config.software,
            self.machine.cpus[0],
            topology=self.config.machine.topology,
        )

    # ------------------------------------------------------------------
    def run(self, program: Callable, **program_kwargs: Any) -> RunResult:
        """Execute *program* SPMD on all processors; returns measurements."""
        if self._ran:
            raise RuntimeError("a QSMMachine can run exactly one program; create a new one")
        self._ran = True

        p = self.p
        ctxs = [
            QSMContext(self.space, pid, self.rngs[pid], self.machine.cpus[pid])
            for pid in range(p)
        ]
        if self._sanitizer is not None:
            for ctx in ctxs:
                ctx.queue.sanitizer = self._sanitizer
        gens = [program(ctxs[pid], **program_kwargs) for pid in range(p)]
        for pid, gen in enumerate(gens):
            if not hasattr(gen, "send"):
                raise TypeError(
                    f"program must be a generator function (processor {pid} "
                    f"returned {type(gen).__name__}); did you forget a yield?"
                )

        result = RunResult(p=p, seed=self.config.seed, returns=[None] * p)
        finished = [False] * p
        trailing = np.zeros(p)
        phase_idx = 0

        while True:
            syncing: List[int] = []
            for pid in range(p):
                if finished[pid]:
                    continue
                try:
                    token = gens[pid].send(None)
                except StopIteration as stop:
                    finished[pid] = True
                    result.returns[pid] = stop.value
                    if not ctxs[pid].queue.empty:
                        raise SPMDError(
                            f"processor {pid} finished with unsynchronized "
                            "get/put requests pending; end programs with a sync"
                        )
                    trailing[pid], _ = ctxs[pid]._drain_compute()
                    continue
                if not isinstance(token, SyncToken):
                    raise TypeError(
                        f"processor {pid} yielded {token!r}; programs must "
                        "yield ctx.sync()"
                    )
                syncing.append(pid)

            if not syncing:
                break
            if len(syncing) != p:
                stragglers = [pid for pid in range(p) if finished[pid]]
                if self._sanitizer is not None:
                    self._sanitizer.note_desync(stragglers, syncing, phase_idx)
                raise SPMDError(
                    f"program is not SPMD: processors {stragglers} finished "
                    f"while {syncing} are still synchronizing (phase {phase_idx})"
                )

            if self._sanitizer is not None:
                self._sanitizer.check_collectives(ctxs, phase_idx)
            self._resolve_allocs(ctxs)
            record = self._execute_phase(ctxs, phase_idx, result)
            result.phases.append(record)
            self._resolve_frees(ctxs)
            phase_idx += 1

        result.trailing_compute_cycles = float(trailing.max()) if p else 0.0
        result.sim_events = self.machine.sim.event_count
        if self.machine.sim.obs is not None:
            self.machine.sim.obs.finalize()
        if self.machine.faults is not None:
            _faults.absorb(self.machine.faults)
        return result

    # ------------------------------------------------------------------
    def _execute_phase(
        self, ctxs: List[QSMContext], phase_idx: int, result: RunResult
    ) -> PhaseRecord:
        p = self.p
        queues = [ctx.queue for ctx in ctxs]

        if self._sanitizer is not None:
            # Richer diagnostics (pids, cells, enqueue file:line) than the
            # plain check below; in error mode it raises first.
            self._sanitizer.check_phase(queues, phase_idx)
        if self.config.check_semantics:
            check_phase_semantics(queues)
        kappa = compute_kappa(queues) if self.config.track_kappa else None

        drains = [ctx._drain_compute() for ctx in ctxs]
        compute_cycles = np.array([d[0] for d in drains])
        op_counts = np.array([d[1] for d in drains])

        for pid, ctx in enumerate(ctxs):
            for key, value in ctx._drain_observations():
                result.observations.setdefault(key, []).append((phase_idx, pid, value))

        traffic = build_traffic(queues, p)
        timing = self._engine.execute_phase(traffic, compute_cycles, traffic.local_words)
        apply_phase_semantics(queues)
        for q in queues:
            q.clear()

        return PhaseRecord(
            index=phase_idx,
            compute_cycles=compute_cycles,
            op_counts=op_counts,
            put_words=traffic.put_words.sum(axis=1),
            get_words=traffic.get_words.sum(axis=1),
            local_words=traffic.local_words.copy(),
            kappa=kappa,
            put_in_words=traffic.put_words.sum(axis=0),
            get_served_words=traffic.get_words.sum(axis=0),
            start=timing.start,
            ready=timing.ready,
            end=timing.end,
        )

    def _resolve_allocs(self, ctxs: List[QSMContext]) -> None:
        """Collectively register arrays requested via ctx.alloc this phase."""
        names = set()
        for ctx in ctxs:
            names.update(ctx._alloc_requests)
        for name in sorted(names):
            specs = {}
            for ctx in ctxs:
                if name not in ctx._alloc_requests:
                    raise SPMDError(
                        f"processor {ctx.pid} did not participate in the "
                        f"collective alloc of {name!r}"
                    )
                specs[ctx.pid] = ctx._alloc_requests[name][0]
            if len(set(specs.values())) != 1:
                raise SPMDError(f"processors disagree on the spec of alloc {name!r}")
            n, layout, dtype = next(iter(specs.values()))
            arr = self.space.allocate(name, n, layout=layout, dtype=dtype)
            for ctx in ctxs:
                ctx._alloc_requests[name][1]._bind(arr)
                del ctx._alloc_requests[name]

    def _resolve_frees(self, ctxs: List[QSMContext]) -> None:
        """Collectively unregister arrays requested via ctx.free this phase."""
        per_pid: Dict[int, set] = {}
        for ctx in ctxs:
            targets = set()
            for item, _origin in ctx._free_requests:
                arr = item.array if isinstance(item, SharedArrayRef) else item
                targets.add(arr.aid)
            per_pid[ctx.pid] = targets
            ctx._free_requests = []
        reference = per_pid[0]
        for pid, targets in per_pid.items():
            if targets != reference:
                raise SPMDError(
                    f"processor {pid} freed a different set of arrays than processor 0"
                )
        for aid in sorted(reference):
            self.space.unregister(self.space.get(aid))


def run_program(
    program: Callable,
    config: Optional[RunConfig] = None,
    setup: Optional[Callable[[QSMMachine], Dict[str, Any]]] = None,
    **program_kwargs: Any,
) -> RunResult:
    """One-shot convenience: build a machine, optionally set up arrays, run.

    *setup* receives the fresh :class:`QSMMachine` and may return a dict
    of extra keyword arguments (typically the arrays it allocated) that
    is merged into the program's kwargs.
    """
    qm = QSMMachine(config)
    if setup is not None:
        extra = setup(qm) or {}
        overlap = set(extra) & set(program_kwargs)
        if overlap:
            raise ValueError(f"setup() and caller both supplied kwargs: {sorted(overlap)}")
        program_kwargs = {**program_kwargs, **extra}
    return qm.run(program, **program_kwargs)
