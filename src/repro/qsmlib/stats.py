"""Per-phase and per-run measurement records.

The paper's figures compare *measured communication time* against model
predictions computed from per-phase operation counts and observed
load-balance skews.  Everything those comparisons need is captured
here:

* :class:`PhaseRecord` — one synchronized phase: per-processor compute
  cycles and op counts (``m_op``), remote put/get word counts
  (``m_rw``), maximum per-word contention (``kappa``), and the DES
  timestamps that define measured communication time;
* :class:`RunResult` — the whole run: phases, totals, algorithm
  observations (B, r, x_i, ...), and the per-processor return values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


@dataclass
class PhaseRecord:
    """Measurements for one bulk-synchronous phase."""

    index: int
    #: Per-processor local computation charged this phase (cycles).
    compute_cycles: np.ndarray
    #: Per-processor abstract operation counts (QSM's m_op).
    op_counts: np.ndarray
    #: Per-processor remote words written (puts crossing nodes).
    put_words: np.ndarray
    #: Per-processor remote words read (gets crossing nodes).
    get_words: np.ndarray
    #: Per-processor words served locally (owner == requester).
    local_words: np.ndarray
    #: Max accesses to any single word this phase (QSM's kappa);
    #: ``None`` when contention tracking is disabled.
    kappa: Optional[int]
    #: Per-processor remote put words *received* (inbound, column sums).
    put_in_words: Optional[np.ndarray] = None
    #: Per-processor get words *served* to other nodes (inbound requests).
    get_served_words: Optional[np.ndarray] = None
    #: Simulation time when the phase began.
    start: float = 0.0
    #: Time when the slowest processor finished local compute.
    ready: float = 0.0
    #: Time when all processors passed the closing barrier.
    end: float = 0.0

    @property
    def comm_cycles(self) -> float:
        """Measured communication time: sync duration after the last
        processor became ready (compute skew excluded)."""
        return self.end - self.ready

    @property
    def total_cycles(self) -> float:
        return self.end - self.start

    @property
    def m_rw(self) -> np.ndarray:
        """Per-processor remote word count (QSM's m_rw)."""
        return self.put_words + self.get_words

    @property
    def max_put_words(self) -> int:
        return int(self.put_words.max()) if self.put_words.size else 0

    @property
    def max_get_words(self) -> int:
        return int(self.get_words.max()) if self.get_words.size else 0

    @property
    def max_m_rw(self) -> int:
        return int(self.m_rw.max()) if self.put_words.size else 0


@dataclass
class RunResult:
    """Everything measured during one simulated program run."""

    p: int
    seed: int
    phases: List[PhaseRecord] = field(default_factory=list)
    #: Per-processor return values of the program generators.
    returns: List[Any] = field(default_factory=list)
    #: Algorithm-reported observations: key -> list of (phase, pid, value).
    observations: Dict[str, List[tuple]] = field(default_factory=dict)
    #: Local compute after the last sync (max over processors).
    trailing_compute_cycles: float = 0.0
    #: Kernel events processed by the simulator over the whole run
    #: (diagnostic; lets benchmarks report events/sec and the fast-path
    #: tests assert the batched send really does less work).
    sim_events: int = 0

    # ------------------------------------------------------------------
    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def comm_cycles(self) -> float:
        """Total measured communication time (the paper's y-axis)."""
        return float(sum(ph.comm_cycles for ph in self.phases))

    @property
    def compute_cycles(self) -> float:
        """Critical-path local computation: per-phase max plus trailing."""
        total = sum(float(ph.compute_cycles.max()) for ph in self.phases)
        return total + self.trailing_compute_cycles

    @property
    def total_cycles(self) -> float:
        """End-to-end running time of the simulated program."""
        last_end = self.phases[-1].end if self.phases else 0.0
        return float(last_end) + self.trailing_compute_cycles

    # -- aggregates used by the generic cost-model estimators ------------
    def sum_max_put_words(self) -> int:
        return sum(ph.max_put_words for ph in self.phases)

    def sum_max_get_words(self) -> int:
        return sum(ph.max_get_words for ph in self.phases)

    def observe_values(self, key: str) -> List[Any]:
        """All observed values for *key*, in (phase, pid) order."""
        return [v for (_ph, _pid, v) in self.observations.get(key, [])]

    def observe_max_by_phase(self, key: str) -> Dict[int, float]:
        """Max observed value per phase for *key* (e.g. x_i skews)."""
        out: Dict[int, float] = {}
        for ph, _pid, v in self.observations.get(key, []):
            out[ph] = max(out.get(ph, float("-inf")), v)
        return out

    def summary(self) -> str:
        return (
            f"RunResult(p={self.p}, phases={self.n_phases}, "
            f"total={self.total_cycles:.0f}cy, comm={self.comm_cycles:.0f}cy, "
            f"compute={self.compute_cycles:.0f}cy)"
        )
