"""The epoch sync path: one phase, priced as arrays plus a flat merge.

The DES paths (``slow`` and ``fast``) advance ``p`` generator processes
through the full simulation kernel — events, processes, resources,
endpoints — even though, once the request queues are realized, a
bulk-synchronous phase's cost is fully determined.  This module prices
the whole phase at once:

* every per-message charge (marshal gaps, wire chunking, NIC send
  occupancy, receive holds, unmarshal/service totals) is computed
  vectorized over the traffic matrices by
  :func:`repro.qsmlib.costmodel.build_epoch_tables`;
* injection timelines are ``np.cumsum`` folds of the precomputed gap
  and occupancy arrays (a strictly sequential accumulate, so the float
  results match the DES's chained ``t = t + step`` adds bit-for-bit);
* what *cannot* be precomputed — the FCFS contention at each receive
  NIC, where chunk streams from different senders interleave — runs in
  one flat ``(time, seq, kind, ...)`` tuple heap with three handler
  kinds, instead of the full event/process machinery.

The discrete-event simulator is touched only at the phase boundary: the
kernel's pop count folds into ``sim.event_count`` and the clock advances
via ``sim.run(until=end)``.

Bit-identity discipline
-----------------------
The kernel mirrors the fast DES path's *push order* exactly: every heap
entry the DES would create (arrival, delivery, node resume) has a
counterpart pushed at the same simulated time and in the same relative
order, so same-instant ties break identically — this matters whenever
two senders' chunks reach one receive engine at the same instant.  The
only DES events without counterparts are ones that never reorder
anything else (process bootstraps and completions, endpoint pump
starts), which is why the epoch path also processes strictly fewer
events.  Eligibility is gated in
:meth:`~repro.qsmlib.runtime.SyncEngine.execute_phase`: any feature
needing per-message fidelity (pacing, finite receive buffers, network
faults, observability, tracing, the sanitizer) falls back to the DES.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import List, Tuple

import numpy as np

from repro.msg.collectives import CONTROL_BYTES, _children, _parent
from repro.qsmlib.costmodel import build_epoch_tables

# Heap-entry kinds, ordered by pop frequency.  Entries are plain tuples:
#   (time, seq, _DELIVER, queue, dst, stream)
#   (time, seq, _ARRIVE, queue, dst, hold, stream)
#   (time, seq, _NODE, pid)
# `queue` indexes the FCFS receive resource the chunk drains through:
# the dst core's engine (queue == dst; always, on a flat topology) or a
# node's shared ingress wire (queue == p + node, cluster inter-node).
# Heap ordering compares only (time, seq), so the extra element never
# perturbs tie-breaking.
_DELIVER, _ARRIVE, _NODE = 0, 1, 2

# Stream keys: one per logically distinct message flow within a phase
# (the counting replacement for the DES endpoint's (src, tag) matching).
# Plan/data/reply receives are tag-only wildcards; barrier receives are
# source-specific, so up/down hops key on the sending pid — encoded as
# small ints (up(src) = 3 + src, down(src) = 3 + p + src) so stream
# lookups hash an int rather than building a tuple per message.
_PLAN, _DATA, _REPLY = 0, 1, 2
_BARRIER = 3


class EpochPhase:
    """One phase's flat replay: precomputed tables + a tuple heap."""

    def __init__(self, machine, sw, traffic, compute_cycles, local_words) -> None:
        p = machine.p
        self.p = p
        self.sw = sw
        self.start = machine.sim.now
        self.latency = machine.config.network.latency_cycles
        self.tables = build_epoch_tables(
            traffic, local_words, sw, machine.config.network, machine.cpus[0],
            topology=machine.config.topology,
        )
        # Straggler penalties accumulate in ascending pid order, exactly
        # as the DES charges them during its pid-ordered bootstraps.
        comp = [float(compute_cycles[pid]) for pid in range(p)]
        faults = machine.faults
        if faults is not None:
            for pid in range(p):
                comp[pid] = comp[pid] + faults.compute_penalty(pid, comp[pid])
        self.compute = comp
        self.ready_times = np.zeros(p)
        self.now = self.start
        self.pops = 0
        self.bytes_sent = 0
        self.messages_sent = 0
        self._heap: list = []
        self._seq = count()
        # Receive-engine state (mirrors the NIC FCFS Resources): one
        # queue per core engine, plus one per shared node wire under a
        # cluster topology.
        node_of = self.tables.node_of
        nqueues = p if node_of is None else p + node_of[-1] + 1
        self._node_of = node_of
        self._busy = [False] * nqueues
        self._fifo: List[deque] = [deque() for _ in range(nqueues)]
        # Per-node message accounting (the counting endpoint).  Stream
        # keys are small ints, so the counters are flat lists indexed by
        # stream — the hot loop never hashes anything.  The wait state
        # is two parallel lists (stream or -1, target count) instead of
        # an allocated tuple per wait.
        nstreams = _BARRIER + 2 * p
        self._delivered: List[List[int]] = [[0] * nstreams for _ in range(p)]
        self._consumed: List[List[int]] = [[0] * nstreams for _ in range(p)]
        self._wait_stream = [-1] * p
        self._wait_target = [0] * p
        self._finished = [False] * p
        self._gens = [self._node(pid) for pid in range(p)]

    # ------------------------------------------------------------------
    def run(self) -> Tuple[float, float, float]:
        """Replay the phase; returns (start, ready, end) timestamps."""
        # Bootstrap every node generator in pid order at t = start, like
        # the DES's pid-ordered process bootstraps (nothing a bootstrap
        # pushes can tie with a later bootstrap: all pushes land at
        # strictly later times).
        for pid in range(self.p):
            try:
                next(self._gens[pid])
            except StopIteration:
                self._finished[pid] = True

        heap = self._heap
        seq = self._seq
        busy = self._busy
        fifo = self._fifo
        delivered = self._delivered
        consumed = self._consumed
        wait_stream = self._wait_stream
        wait_target = self._wait_target
        gens = self._gens
        finished = self._finished
        now = self.start
        while heap:
            entry = heappop(heap)
            now = entry[0]
            kind = entry[2]
            if kind == _DELIVER:
                queue = entry[3]
                dst = entry[4]
                stream = entry[5]
                # Free the engine first: the next queued chunk starts
                # service before this delivery wakes any waiter (the
                # order _fast_deliver's unclaim-then-hook enforces).
                q = fifo[queue]
                if q:
                    hold2, dst2, stream2 = q.popleft()
                    heappush(heap, (now + hold2, next(seq), _DELIVER, queue, dst2, stream2))
                else:
                    busy[queue] = False
                d = delivered[dst]
                got = d[stream] + 1
                d[stream] = got
                if wait_stream[dst] == stream and got >= wait_target[dst]:
                    wait_stream[dst] = -1
                    consumed[dst][stream] = wait_target[dst]
                    heappush(heap, (now, next(seq), _NODE, dst))
            elif kind == _ARRIVE:
                queue = entry[3]
                if busy[queue]:
                    fifo[queue].append((entry[5], entry[4], entry[6]))
                else:
                    busy[queue] = True
                    heappush(heap, (now + entry[5], next(seq), _DELIVER, queue, entry[4], entry[6]))
            else:  # _NODE: resume the node generator at `now`
                pid = entry[3]
                try:
                    gens[pid].send(now)
                except StopIteration:
                    finished[pid] = True
        self.now = now
        # The heap drained, so pops == pushes == the seq counter's value.
        self.pops = next(seq)
        if not all(finished):
            raise RuntimeError("sync deadlocked: a node never completed the phase")
        return self.start, float(self.ready_times.max()), now

    # ------------------------------------------------------------------
    # Node timeline (mirrors SyncEngine._node_proc's fast path, with
    # every `yield sim.timeout(...)` / event wait as one heap entry).
    # ------------------------------------------------------------------
    def _node(self, pid: int):
        heap = self._heap
        seq = self._seq
        p = self.p
        tb = self.tables

        t = self.start
        compute = self.compute[pid]
        if compute > 0:
            t = t + compute
            heappush(heap, (t, next(seq), _NODE, pid))
            t = yield
        self.ready_times[pid] = t
        overhead = float(tb.entry_overhead[pid])
        if overhead > 0:
            t = t + overhead
            heappush(heap, (t, next(seq), _NODE, pid))
            t = yield

        if p == 1:
            return

        # -- 1. plan exchange ------------------------------------------
        if tb.plan_sends is not None:
            t = self._send_burst(pid, t, tb.plan_sends[pid], _PLAN)
        else:
            t = self._send_uniform(
                pid, t, tb.plan_dsts[pid], tb.plan_occupancy, tb.plan_hold,
                tb.plan_bytes, _PLAN,
            )
        t = yield
        if not self._try_recv(pid, _PLAN, p - 1):
            t = yield

        # -- 2. data messages: puts + get requests ----------------------
        sched = tb.data_sends[pid]
        if sched is not None:
            t = self._send_burst(pid, t, sched, _DATA)
            t = yield
        expected = tb.expected_data[pid]
        if expected and not self._try_recv(pid, _DATA, expected):
            t = yield
        unmarshal = tb.unmarshal_data[pid]
        if unmarshal:
            t = t + unmarshal
            heappush(heap, (t, next(seq), _NODE, pid))
            t = yield

        # -- 3. get replies ---------------------------------------------
        sched = tb.reply_sends[pid]
        if sched is not None:
            t = self._send_burst(pid, t, sched, _REPLY)
            t = yield
        expected = tb.expected_reply[pid]
        if expected and not self._try_recv(pid, _REPLY, expected):
            t = yield
        unmarshal = tb.unmarshal_reply[pid]
        if unmarshal:
            t = t + unmarshal
            heappush(heap, (t, next(seq), _NODE, pid))
            t = yield

        # -- 4. closing barrier -----------------------------------------
        hop = self.sw.barrier_hop_cycles
        up = _BARRIER
        down = _BARRIER + p
        for child in _children(pid, p):
            if not self._try_recv(pid, up + child, 1):
                t = yield
            if hop:
                t = t + hop
                heappush(heap, (t, next(seq), _NODE, pid))
                t = yield
        if pid != 0:
            if hop:
                t = t + hop
                heappush(heap, (t, next(seq), _NODE, pid))
                t = yield
            t = self._send_control(pid, t, _parent(pid), up + pid)
            t = yield
            if not self._try_recv(pid, down + _parent(pid), 1):
                t = yield
            if hop:
                t = t + hop
                heappush(heap, (t, next(seq), _NODE, pid))
                t = yield
        for child in _children(pid, p):
            if hop:
                t = t + hop
                heappush(heap, (t, next(seq), _NODE, pid))
                t = yield
            t = self._send_control(pid, t, child, down + pid)
            t = yield

    # ------------------------------------------------------------------
    # Send/receive building blocks
    # ------------------------------------------------------------------
    def _send_burst(self, pid: int, t0: float, sched, stream) -> float:
        """Inject one precomputed chunk stream starting at *t0*.

        The injection timeline is a sequential float64 fold —
        ``t += gap; t += occupancy`` per chunk — matching the DES's
        chained adds in ``send_burst_from`` exactly (adding a 0.0 gap is
        a bitwise no-op).  Arrivals push in entry order, then the
        sender's drain resume — the same order the DES pushes them.
        The per-chunk heappush dominates this loop either way, so the
        fold stays in plain Python rather than paying a numpy
        allocate/cumsum/tolist round trip per call.
        """
        heap = self._heap
        seq = self._seq
        dsts = sched.dsts
        gaps = sched.gaps
        occs = sched.occupancy
        holds = sched.holds
        lats = sched.lats
        t = t0
        if lats is None:
            latency = self.latency
            for k in range(sched.count):
                t = t + gaps[k]
                t = t + occs[k]
                heappush(
                    heap, (t + latency, next(seq), _ARRIVE, dsts[k], dsts[k], holds[k], stream)
                )
        else:
            queues = sched.queues
            for k in range(sched.count):
                t = t + gaps[k]
                t = t + occs[k]
                heappush(
                    heap, (t + lats[k], next(seq), _ARRIVE, queues[k], dsts[k], holds[k], stream)
                )
        heappush(heap, (t, next(seq), _NODE, pid))
        self.bytes_sent += sched.total_bytes
        self.messages_sent += sched.count
        return t

    def _send_uniform(
        self, pid: int, t0: float, dsts, occ: float, hold: float, nbytes: int, stream
    ) -> float:
        """Burst of equal-size, gapless messages (the plan stage)."""
        heap = self._heap
        seq = self._seq
        latency = self.latency
        t = t0
        for dst in dsts:
            t = t + occ
            heappush(heap, (t + latency, next(seq), _ARRIVE, dst, dst, hold, stream))
        heappush(heap, (t, next(seq), _NODE, pid))
        self.bytes_sent += len(dsts) * nbytes
        self.messages_sent += len(dsts)
        return t

    def _send_control(self, pid: int, t0: float, dst: int, stream) -> float:
        """Single barrier control message."""
        tb = self.tables
        node_of = self._node_of
        if node_of is None:
            occ, hold, latency, queue = (
                tb.control_occupancy, tb.control_hold, self.latency, dst,
            )
        elif node_of[pid] == node_of[dst]:
            occ, hold, latency = tb.control_intra
            queue = dst
        else:
            occ, hold, latency = tb.control_inter
            queue = self.p + node_of[dst]
        t = t0 + occ
        heap = self._heap
        seq = self._seq
        heappush(heap, (t + latency, next(seq), _ARRIVE, queue, dst, hold, stream))
        heappush(heap, (t, next(seq), _NODE, pid))
        self.bytes_sent += CONTROL_BYTES
        self.messages_sent += 1
        return t

    def _try_recv(self, pid: int, stream: int, needed: int) -> bool:
        """Counting receive: True if already satisfied (continue inline,
        like the DES's pending-scan early return), else register the
        wait — the satisfying delivery will push the node resume."""
        consumed = self._consumed[pid]
        target = consumed[stream] + needed
        if self._delivered[pid][stream] >= target:
            consumed[stream] = target
            return True
        self._wait_stream[pid] = stream
        self._wait_target[pid] = target
        return False


def execute_epoch_phase(
    machine, sw, traffic, compute_cycles, local_words
) -> Tuple[float, float, float]:
    """Run one phase on the epoch path; returns (start, ready, end).

    Folds the kernel's work back into the simulator: the pop count joins
    ``sim.event_count``, the clock advances to *end*, and the network's
    lifetime byte/message counters include this phase's injections.
    """
    phase = EpochPhase(machine, sw, traffic, compute_cycles, local_words)
    start, ready, end = phase.run()
    sim = machine.sim
    sim._event_count += phase.pops
    sim.run(until=end)
    network = machine.network
    network.bytes_sent += phase.bytes_sent
    network.messages_sent += phase.messages_sent
    return start, ready, end
