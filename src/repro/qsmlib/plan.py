"""Communication-plan construction: per-pair traffic from request queues.

During a ``sync()``, the library "first builds and distributes a
communications plan that indicates how many gets and puts will occur
between each pair of nodes" (§3.1.2).  This module computes those
matrices (vectorised over the numpy index arrays of each request) and
the phase-semantics bookkeeping (kappa contention, read/write-overlap
checking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.qsmlib.address_space import SharedArray
from repro.qsmlib.requests import RequestQueue


class QSMSemanticsError(RuntimeError):
    """A program violated the bulk-synchronous memory semantics of §2."""


@dataclass
class PhaseTraffic:
    """Per-pair word counts for one phase.

    ``put_words[s, d]`` — words processor *s* puts into words owned by
    *d*; ``get_words[s, d]`` — words *s* gets from owner *d*.  Diagonals
    are zero; locally-served words are in ``local_words``.
    """

    put_words: np.ndarray
    get_words: np.ndarray
    local_words: np.ndarray
    kappa: Optional[int]

    @property
    def p(self) -> int:
        return self.put_words.shape[0]

    def remote_put_row(self, pid: int) -> int:
        return int(self.put_words[pid].sum())

    def remote_get_row(self, pid: int) -> int:
        return int(self.get_words[pid].sum())

    def expected_data_sources(self, pid: int) -> List[int]:
        """Nodes that will send a data message (puts and/or get requests) to *pid*."""
        inbound = self.put_words[:, pid] + self.get_words[:, pid]
        return [s for s in range(self.p) if s != pid and inbound[s] > 0]

    def expected_reply_sources(self, pid: int) -> List[int]:
        """Owners that will send a get-reply message to *pid*."""
        return [d for d in range(self.p) if d != pid and self.get_words[pid, d] > 0]


def _owner_counts(requests, p: int) -> np.ndarray:
    """Owner histogram for one queue's puts or gets.

    Contiguous range requests use the closed-form
    :meth:`~repro.qsmlib.layout.LayoutMap.range_owner_counts` (no index
    array is ever materialised); the rest are grouped by target array so
    each array pays one ``owner_of`` + ``np.bincount`` over the
    concatenated index arrays, however many individual get/put calls the
    program issued.  Counts are integers, so both shortcuts are exact —
    ``build_traffic`` output is identical to the per-request
    formulation.
    """
    counts = np.zeros(p, dtype=np.int64)
    groups: Dict[int, Tuple[SharedArray, List[np.ndarray]]] = {}
    for req in requests:
        span = req.span
        if span is not None:
            req.arr.map.range_owner_counts(span[0], span[1], out=counts)
            continue
        entry = groups.get(req.arr.aid)
        if entry is None:
            groups[req.arr.aid] = (req.arr, [req.indices])
        else:
            entry[1].append(req.indices)
    for arr, idx_lists in groups.values():
        idx = idx_lists[0] if len(idx_lists) == 1 else np.concatenate(idx_lists)
        # Indices were bounds-checked when the requests were queued, so
        # the owner lookup here skips re-validation.
        counts += np.bincount(arr.owner_of(idx, validate=False), minlength=p)
    return counts


def build_traffic(queues: Sequence[RequestQueue], p: int) -> PhaseTraffic:
    """Aggregate all queued requests into per-pair word-count matrices."""
    put_words = np.zeros((p, p), dtype=np.int64)
    get_words = np.zeros((p, p), dtype=np.int64)
    local_words = np.zeros(p, dtype=np.int64)

    for q in queues:
        if q.puts:
            counts = _owner_counts(q.puts, p)
            local_words[q.pid] += counts[q.pid]
            counts[q.pid] = 0
            put_words[q.pid] += counts
        if q.gets:
            counts = _owner_counts(q.gets, p)
            local_words[q.pid] += counts[q.pid]
            counts[q.pid] = 0
            get_words[q.pid] += counts

    return PhaseTraffic(put_words, get_words, local_words, kappa=None)


def compute_kappa(queues: Sequence[RequestQueue]) -> int:
    """Maximum number of accesses to any single word this phase (QSM kappa)."""
    per_array: Dict[int, Tuple[SharedArray, List[np.ndarray]]] = {}
    for q in queues:
        for req in list(q.puts) + list(q.gets):
            per_array.setdefault(req.arr.aid, (req.arr, []))[1].append(req.indices)
    kappa = 0
    for arr, idx_lists in per_array.values():
        idx = np.concatenate(idx_lists)
        if idx.size == 0:
            continue
        counts = np.bincount(idx, minlength=arr.n)
        kappa = max(kappa, int(counts.max()))
    return kappa


def check_phase_semantics(queues: Sequence[RequestQueue]) -> None:
    """Enforce §2: no word may be both read and written in one phase.

    Raises :class:`QSMSemanticsError` naming the first offending array.
    """
    reads: Dict[int, Tuple[SharedArray, List[np.ndarray]]] = {}
    writes: Dict[int, Tuple[SharedArray, List[np.ndarray]]] = {}
    for q in queues:
        for req in q.gets:
            reads.setdefault(req.arr.aid, (req.arr, []))[1].append(req.indices)
        for req in q.puts:
            writes.setdefault(req.arr.aid, (req.arr, []))[1].append(req.indices)
    for aid, (arr, write_lists) in writes.items():
        if aid not in reads:
            continue
        mask = np.zeros(arr.n, dtype=bool)
        mask[np.concatenate(write_lists)] = True
        read_idx = np.concatenate(reads[aid][1])
        overlap = mask[read_idx]
        if overlap.any():
            word = int(read_idx[overlap.argmax()])
            raise QSMSemanticsError(
                f"word {word} of array {arr.name!r} is both read and written "
                "in the same phase, which QSM forbids (§2)"
            )


def apply_phase_semantics(queues: Sequence[RequestQueue]) -> None:
    """Fulfil gets from the phase-start snapshot, then apply puts.

    Serving every get before applying any put implements the snapshot
    semantics; puts apply in processor order (a deterministic
    realisation of the queue-write model's "arbitrary winner").
    """
    # Contiguous spans gather/scatter through slices (a memcpy) instead
    # of fancy indexing; the result is element-for-element the same.
    for q in queues:
        for req in q.gets:
            span = req.span
            if span is not None:
                start, count = span
                req.handle._fulfill(req.arr.data[start : start + count].copy())
            else:
                req.handle._fulfill(req.arr.data[req.indices].copy())
    for q in queues:
        for req in q.puts:
            span = req.span
            if span is not None:
                start, count = span
                req.arr.data[start : start + count] = req.values
            else:
                req.arr.data[req.indices] = req.values
