"""Data layouts: how a shared array's words map onto nodes.

QSM's implementation contract says the runtime may *randomise* the
layout (hash addresses across banks/nodes) to avoid contention, unless
the algorithm declares its own balanced layout (§2, bullet 2).  We
provide the three layouts the algorithms and experiments need:

* ``BLOCKED`` — word ``i`` lives on node ``i // ceil(n/p)``.  The
  appendix algorithms distribute inputs/outputs this way.
* ``CYCLIC`` — word ``i`` lives on node ``i % p``.
* ``HASHED`` — cache-line-sized blocks are assigned to nodes by a
  multiplicative hash, the paper's randomised default.
* ``ROOT`` — every word lives on node 0 (used for list ranking's
  "send all remaining elements to processor 0" step).

Owner computation is vectorised (one numpy expression per call) because
the irregular algorithms look up owners for hundreds of thousands of
indices per phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Words per hashed block (64-byte lines of 8-byte words).
HASH_BLOCK_WORDS = 8

#: Knuth's multiplicative constant (golden-ratio based, 64-bit).
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


class Layout(enum.Enum):
    """Placement policy for one shared array."""

    BLOCKED = "blocked"
    CYCLIC = "cyclic"
    HASHED = "hashed"
    ROOT = "root"


@dataclass(frozen=True)
class LayoutMap:
    """A concrete layout instance for an array of ``n`` words on ``p`` nodes."""

    layout: Layout
    n: int
    p: int
    salt: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"array length must be >= 1, got {self.n}")
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")

    @property
    def block(self) -> int:
        """Block size of the BLOCKED layout (ceil(n/p))."""
        return -(-self.n // self.p)

    # ------------------------------------------------------------------
    def owner_of(self, indices: np.ndarray, validate: bool = True) -> np.ndarray:
        """Vectorised owner lookup; *indices* is any integer ndarray.

        ``validate=False`` skips the bounds check for callers that have
        already validated the indices (e.g. the phase planner, whose
        request queues bounds-check at enqueue time).
        """
        idx = np.asarray(indices)
        if validate and idx.size and (idx.min() < 0 or idx.max() >= self.n):
            bad = idx[(idx < 0) | (idx >= self.n)][0]
            raise IndexError(f"index {bad} out of bounds for array of length {self.n}")
        if self.layout is Layout.BLOCKED:
            return idx // self.block
        if self.layout is Layout.CYCLIC:
            return idx % self.p
        if self.layout is Layout.ROOT:
            return np.zeros(idx.shape, dtype=np.int64)
        if self.layout is Layout.HASHED:
            blocks = (idx // HASH_BLOCK_WORDS).astype(np.uint64)
            salted = (blocks + np.uint64(self.salt)) * _HASH_MULT
            return ((salted >> np.uint64(33)) % np.uint64(self.p)).astype(np.int64)
        raise AssertionError(f"unhandled layout {self.layout}")

    def owner_of_scalar(self, index: int) -> int:
        return int(self.owner_of(np.asarray([index]))[0])

    def range_owner_counts(
        self, start: int, count: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Owner histogram (length ``p``) of ``[start, start+count)``.

        Equivalent to ``np.bincount(owner_of(arange(start, start+count)),
        minlength=p)`` without materialising the range: BLOCKED/CYCLIC/
        ROOT are closed-form, HASHED hashes one value per touched
        cache-line block instead of one per word.  Counts are integers,
        so the shortcut is exact.  With *out*, counts are accumulated
        into the given int64 buffer (and returned) instead of a fresh
        zero array — the traffic builder folds many spans into one
        histogram this way.
        """
        counts = np.zeros(self.p, dtype=np.int64) if out is None else out
        if count <= 0:
            return counts
        end = start + count
        if self.layout is Layout.BLOCKED:
            block = self.block
            lo, hi = start // block, (end - 1) // block
            if lo == hi:
                counts[lo] += count
            else:
                counts[lo] += (lo + 1) * block - start
                counts[lo + 1 : hi] += block
                counts[hi] += end - hi * block
            return counts
        if self.layout is Layout.CYCLIC:
            base, rem = divmod(count, self.p)
            if base:
                counts += base
            if rem:
                counts[(start + np.arange(rem)) % self.p] += 1
            return counts
        if self.layout is Layout.ROOT:
            counts[0] += count
            return counts
        # HASHED: one owner per cache-line block, weighted by how many
        # of the block's words fall inside the range.
        b0, b1 = start // HASH_BLOCK_WORDS, (end - 1) // HASH_BLOCK_WORDS
        blocks = np.arange(b0, b1 + 1, dtype=np.uint64)
        salted = (blocks + np.uint64(self.salt)) * _HASH_MULT
        owners = ((salted >> np.uint64(33)) % np.uint64(self.p)).astype(np.int64)
        weights = np.full(owners.size, HASH_BLOCK_WORDS, dtype=np.int64)
        weights[0] = min(end, (b0 + 1) * HASH_BLOCK_WORDS) - start
        if b1 > b0:
            weights[-1] = end - b1 * HASH_BLOCK_WORDS
        # Weighted bincount sums in float64; per-block weights are <= 8
        # and totals fit far inside 2**53, so the cast back is exact.
        counts += np.bincount(owners, weights=weights, minlength=self.p).astype(np.int64)
        return counts

    # ------------------------------------------------------------------
    def local_slice(self, pid: int):
        """The contiguous global slice owned by *pid* (BLOCKED/ROOT only)."""
        if self.layout is Layout.ROOT:
            return slice(0, self.n) if pid == 0 else slice(0, 0)
        if self.layout is not Layout.BLOCKED:
            raise ValueError(f"local_slice is only defined for BLOCKED/ROOT, not {self.layout}")
        lo = min(pid * self.block, self.n)
        hi = min(lo + self.block, self.n)
        return slice(lo, hi)

    def local_count(self, pid: int) -> int:
        """Number of words owned by *pid* under this layout."""
        if self.layout in (Layout.BLOCKED, Layout.ROOT):
            sl = self.local_slice(pid)
            return sl.stop - sl.start
        if self.layout is Layout.CYCLIC:
            return (self.n - pid + self.p - 1) // self.p if pid < self.n else 0
        # HASHED: count exactly (used only in tests / small arrays).
        owners = self.owner_of(np.arange(self.n))
        return int(np.count_nonzero(owners == pid))
