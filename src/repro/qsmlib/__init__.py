"""Bulk-synchronous shared-memory library (the paper's QSM runtime).

The shared-memory interface of §3.1.2: remote memory is accessed with
explicit ``get()``/``put()`` calls that merely enqueue requests; all
communication happens inside ``sync()``, which builds and distributes a
communication plan, exchanges data in a contention-avoiding order, and
closes with a tree barrier.  Programs are SPMD generators driven by
:class:`~repro.qsmlib.program.QSMMachine`.

Quick example::

    from repro.qsmlib import QSMMachine, RunConfig

    def program(ctx, A):
        me = ctx.local(A)                       # node-local view
        ctx.put(A.array if hasattr(A, "array") else A, [0], [ctx.pid])
        yield ctx.sync()

    qm = QSMMachine(RunConfig())
    A = qm.allocate("A", 1024)
    result = qm.run(program, A=A)
    print(result.summary())
"""

from repro.qsmlib.address_space import AddressSpace, SharedArray
from repro.qsmlib.collective_patterns import AllShareBoard, scatter_from_root, ship_block_to
from repro.qsmlib.config import SoftwareConfig
from repro.qsmlib.context import QSMContext, SharedArrayRef, SyncToken
from repro.qsmlib.costmodel import CommCostModel
from repro.qsmlib.layout import HASH_BLOCK_WORDS, Layout, LayoutMap
from repro.qsmlib.plan import (
    PhaseTraffic,
    QSMSemanticsError,
    apply_phase_semantics,
    build_traffic,
    check_phase_semantics,
    compute_kappa,
)
from repro.qsmlib.program import QSMMachine, RunConfig, SPMDError, run_program
from repro.qsmlib.requests import GetHandle, RequestQueue
from repro.qsmlib.runtime import PhaseTiming, SyncEngine
from repro.qsmlib.stats import PhaseRecord, RunResult

__all__ = [
    "AddressSpace",
    "SharedArray",
    "SoftwareConfig",
    "AllShareBoard",
    "scatter_from_root",
    "ship_block_to",
    "QSMContext",
    "SharedArrayRef",
    "SyncToken",
    "CommCostModel",
    "Layout",
    "LayoutMap",
    "HASH_BLOCK_WORDS",
    "PhaseTraffic",
    "QSMSemanticsError",
    "apply_phase_semantics",
    "build_traffic",
    "check_phase_semantics",
    "compute_kappa",
    "QSMMachine",
    "RunConfig",
    "SPMDError",
    "run_program",
    "GetHandle",
    "RequestQueue",
    "PhaseTiming",
    "SyncEngine",
    "PhaseRecord",
    "RunResult",
]
