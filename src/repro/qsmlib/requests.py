"""Get/put request batches queued between syncs.

Per the bulk-synchronous contract (§2), ``get``/``put`` calls merely
*enqueue* requests; all communication happens inside ``sync()``.  A
:class:`RequestQueue` holds one processor's pending requests for the
current phase; each request carries numpy index/value arrays so that
per-owner splitting stays vectorised.

Semantics implemented (and enforced) from §2:

* values returned by gets issued in a phase reflect the shared memory
  state at the *start* of the phase;
* puts become visible at the *end* of the phase;
* the same location may not be both read and written within one phase
  (checked by the runtime when semantics checking is enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.qsmlib.address_space import SharedArray


class GetHandle:
    """Future for a get; ``data`` is available after the next ``sync()``.

    ``data[k]`` corresponds to ``indices[k]`` of the original request.
    ``origin`` is the enqueue ``file:line``, captured only when the
    phase sanitizer (:mod:`repro.check`) is armed.

    Range requests (``add_get_range``) record only a ``(start, count)``
    span; the explicit index array is materialised lazily the first time
    ``indices`` is read, so the bulk contiguous path never allocates it.
    """

    __slots__ = ("arr", "span", "_indices", "_data", "origin")

    def __init__(
        self,
        arr: SharedArray,
        indices: Optional[np.ndarray] = None,
        origin: Optional[str] = None,
        span: Optional[tuple] = None,
    ) -> None:
        self.arr = arr
        self.span = span
        self._indices = indices
        self._data: Optional[np.ndarray] = None
        self.origin = origin

    @property
    def indices(self) -> np.ndarray:
        idx = self._indices
        if idx is None:
            start, count = self.span
            idx = self._indices = np.arange(start, start + count, dtype=np.int64)
        return idx

    @property
    def ready(self) -> bool:
        return self._data is not None

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            where = f" (get enqueued at {self.origin})" if self.origin else ""
            raise RuntimeError(
                "get() result read before sync(); QSM forbids using values "
                f"fetched in the same phase{where}"
            )
        return self._data

    def _fulfill(self, values: np.ndarray) -> None:
        self._data = values


class _Request:
    """Base of one queued access: explicit indices or a contiguous span.

    Exactly one of ``_indices``/``span`` is set at construction; the
    ``indices`` property materialises (and caches) the explicit array on
    demand, so span-only consumers — traffic counting, slice-based
    apply — never pay for it.  ``origin`` is the enqueue ``file:line``,
    captured only when the sanitizer is armed.
    """

    __slots__ = ("arr", "span", "_indices", "origin")

    def __init__(
        self,
        arr: SharedArray,
        indices: Optional[np.ndarray] = None,
        origin: Optional[str] = None,
        span: Optional[tuple] = None,
    ) -> None:
        self.arr = arr
        self.span = span
        self._indices = indices
        self.origin = origin

    @property
    def indices(self) -> np.ndarray:
        idx = self._indices
        if idx is None:
            start, count = self.span
            idx = self._indices = np.arange(start, start + count, dtype=np.int64)
        return idx


class GetRequest(_Request):
    __slots__ = ("handle",)

    def __init__(
        self,
        arr: SharedArray,
        indices: Optional[np.ndarray] = None,
        handle: Optional[GetHandle] = None,
        origin: Optional[str] = None,
        span: Optional[tuple] = None,
    ) -> None:
        # Attributes set inline (not via super().__init__): these run
        # once per enqueued request, the library's hottest call sites.
        self.arr = arr
        self.span = span
        self._indices = indices
        self.origin = origin
        self.handle = handle


class PutRequest(_Request):
    __slots__ = ("values",)

    def __init__(
        self,
        arr: SharedArray,
        indices: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
        origin: Optional[str] = None,
        span: Optional[tuple] = None,
    ) -> None:
        self.arr = arr
        self.span = span
        self._indices = indices
        self.origin = origin
        self.values = values


@dataclass
class RequestQueue:
    """All requests one processor queued since the last sync."""

    pid: int
    gets: List[GetRequest] = field(default_factory=list)
    puts: List[PutRequest] = field(default_factory=list)
    #: The armed :class:`repro.check.PhaseSanitizer`, or ``None`` — the
    #: disarmed path pays one load + branch per enqueue call, nothing more.
    sanitizer: Optional[object] = field(default=None, repr=False, compare=False)

    def add_get(self, arr: SharedArray, indices: np.ndarray) -> GetHandle:
        san = self.sanitizer
        origin = san.enqueue_origin() if san is not None else None
        try:
            indices = _as_index_array(arr, indices)
        except IndexError as exc:
            if san is not None:
                san.record_oob(self.pid, arr, "get", exc, origin)
            raise
        handle = GetHandle(arr, indices, origin=origin)
        self.gets.append(GetRequest(arr, indices, handle, origin=origin))
        return handle

    def add_get_range(self, arr: SharedArray, start: int, count: int) -> GetHandle:
        """`add_get` of the contiguous range ``[start, start+count)``.

        Bounds are checked from the endpoints, and the request carries
        only the ``(start, count)`` span — no index array is built
        unless some consumer (sanitizer, kappa tracking) asks for one.
        """
        san = self.sanitizer
        origin = san.enqueue_origin() if san is not None else None
        try:
            _check_range(arr, start, count)
        except IndexError as exc:
            if san is not None:
                san.record_oob(self.pid, arr, "get", exc, origin)
            raise
        span = (start, count)
        handle = GetHandle(arr, origin=origin, span=span)
        self.gets.append(GetRequest(arr, handle=handle, origin=origin, span=span))
        return handle

    def add_put(self, arr: SharedArray, indices: np.ndarray, values) -> None:
        san = self.sanitizer
        origin = san.enqueue_origin() if san is not None else None
        if san is not None:
            san.check_put_values(self.pid, arr, values, origin)
        try:
            indices = _as_index_array(arr, indices)
        except IndexError as exc:
            if san is not None:
                san.record_oob(self.pid, arr, "put", exc, origin)
            raise
        values = self._coerce_put_values(arr, indices, values)
        self.puts.append(PutRequest(arr, indices, values, origin=origin))

    def add_put_range(self, arr: SharedArray, start: int, values) -> None:
        """`add_put` to the contiguous range starting at *start*."""
        san = self.sanitizer
        origin = san.enqueue_origin() if san is not None else None
        if san is not None:
            san.check_put_values(self.pid, arr, values, origin)
        # np.array always copies, giving the snapshot the old
        # asarray-then-copy pair produced in exactly one pass; a scalar
        # reshapes to the same single-element row the broadcast made.
        values = np.array(values, dtype=arr.dtype).reshape(-1)
        try:
            _check_range(arr, start, values.size)
        except IndexError as exc:
            if san is not None:
                san.record_oob(self.pid, arr, "put", exc, origin)
            raise
        self.puts.append(
            PutRequest(arr, values=values, origin=origin, span=(start, values.size))
        )

    def _coerce_put_values(
        self, arr: SharedArray, indices: np.ndarray, values
    ) -> np.ndarray:
        """Validate values against *indices* at enqueue time.

        Scalars broadcast; otherwise the value count must equal the index
        count (any shape — values are flattened to match the flattened
        index array).  A mismatch raises here, per-pid, instead of
        surfacing as an opaque numpy broadcast error inside the sync
        engine.
        """
        values = np.asarray(values, dtype=arr.dtype)
        if values.ndim == 0:
            return np.broadcast_to(values, indices.shape).copy()
        if values.size != indices.size:
            raise ValueError(
                f"put shape mismatch on array {arr.name!r} (pid {self.pid}): "
                f"{indices.size} indices vs {values.size} values "
                f"(value shape {values.shape})"
            )
        return values.reshape(indices.shape).copy()

    def clear(self) -> None:
        self.gets.clear()
        self.puts.clear()

    @property
    def empty(self) -> bool:
        return not self.gets and not self.puts


def _as_index_array(arr: SharedArray, indices) -> np.ndarray:
    idx = np.asarray(indices, dtype=np.int64).ravel()
    if idx.size:
        lo, hi = int(idx.min()), int(idx.max())
        if lo < 0 or hi >= arr.n:
            raise IndexError(
                f"indices [{lo}, {hi}] out of bounds for {arr.name!r} of length {arr.n}"
            )
    return idx


def _check_range(arr: SharedArray, start: int, count: int) -> None:
    if count and (start < 0 or start + count > arr.n):
        raise IndexError(
            f"indices [{start}, {start + count - 1}] out of bounds for "
            f"{arr.name!r} of length {arr.n}"
        )
