"""Get/put request batches queued between syncs.

Per the bulk-synchronous contract (§2), ``get``/``put`` calls merely
*enqueue* requests; all communication happens inside ``sync()``.  A
:class:`RequestQueue` holds one processor's pending requests for the
current phase; each request carries numpy index/value arrays so that
per-owner splitting stays vectorised.

Semantics implemented (and enforced) from §2:

* values returned by gets issued in a phase reflect the shared memory
  state at the *start* of the phase;
* puts become visible at the *end* of the phase;
* the same location may not be both read and written within one phase
  (checked by the runtime when semantics checking is enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.qsmlib.address_space import SharedArray


class GetHandle:
    """Future for a get; ``data`` is available after the next ``sync()``.

    ``data[k]`` corresponds to ``indices[k]`` of the original request.
    """

    __slots__ = ("arr", "indices", "_data")

    def __init__(self, arr: SharedArray, indices: np.ndarray) -> None:
        self.arr = arr
        self.indices = indices
        self._data: Optional[np.ndarray] = None

    @property
    def ready(self) -> bool:
        return self._data is not None

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise RuntimeError(
                "get() result read before sync(); QSM forbids using values "
                "fetched in the same phase"
            )
        return self._data

    def _fulfill(self, values: np.ndarray) -> None:
        self._data = values


@dataclass
class GetRequest:
    arr: SharedArray
    indices: np.ndarray
    handle: GetHandle


@dataclass
class PutRequest:
    arr: SharedArray
    indices: np.ndarray
    values: np.ndarray


@dataclass
class RequestQueue:
    """All requests one processor queued since the last sync."""

    pid: int
    gets: List[GetRequest] = field(default_factory=list)
    puts: List[PutRequest] = field(default_factory=list)

    def add_get(self, arr: SharedArray, indices: np.ndarray) -> GetHandle:
        indices = _as_index_array(arr, indices)
        handle = GetHandle(arr, indices)
        self.gets.append(GetRequest(arr, indices, handle))
        return handle

    def add_get_range(self, arr: SharedArray, start: int, count: int) -> GetHandle:
        """`add_get` of the contiguous range ``[start, start+count)``.

        Bounds are checked from the endpoints, skipping the min/max
        reductions `_as_index_array` needs for arbitrary index sets.
        """
        indices = _range_index_array(arr, start, count)
        handle = GetHandle(arr, indices)
        self.gets.append(GetRequest(arr, indices, handle))
        return handle

    def add_put(self, arr: SharedArray, indices: np.ndarray, values) -> None:
        indices = _as_index_array(arr, indices)
        values = np.asarray(values, dtype=arr.dtype)
        if values.ndim == 0:
            values = np.broadcast_to(values, indices.shape).copy()
        if values.shape != indices.shape:
            raise ValueError(
                f"put shape mismatch: {len(indices)} indices vs {values.shape} values"
            )
        self.puts.append(PutRequest(arr, indices, values.copy()))

    def add_put_range(self, arr: SharedArray, start: int, values) -> None:
        """`add_put` to the contiguous range starting at *start*."""
        values = np.asarray(values, dtype=arr.dtype)
        indices = _range_index_array(arr, start, values.size)
        if values.shape != indices.shape:
            raise ValueError(
                f"put shape mismatch: {len(indices)} indices vs {values.shape} values"
            )
        self.puts.append(PutRequest(arr, indices, values.copy()))

    def clear(self) -> None:
        self.gets.clear()
        self.puts.clear()

    @property
    def empty(self) -> bool:
        return not self.gets and not self.puts


def _as_index_array(arr: SharedArray, indices) -> np.ndarray:
    idx = np.asarray(indices, dtype=np.int64).ravel()
    if idx.size:
        lo, hi = int(idx.min()), int(idx.max())
        if lo < 0 or hi >= arr.n:
            raise IndexError(
                f"indices [{lo}, {hi}] out of bounds for {arr.name!r} of length {arr.n}"
            )
    return idx


def _range_index_array(arr: SharedArray, start: int, count: int) -> np.ndarray:
    if count and (start < 0 or start + count > arr.n):
        raise IndexError(
            f"indices [{start}, {start + count - 1}] out of bounds for "
            f"{arr.name!r} of length {arr.n}"
        )
    return np.arange(start, start + count, dtype=np.int64)
