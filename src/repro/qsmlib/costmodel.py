"""Analytic mirror of the sync engine: effective per-word costs.

Model predictions (the QSM/BSP lines in Figures 1–3) charge ``g`` per
remote word.  The *effective* ``g`` of a real system is the hardware
gap plus all the software the library wraps around each word; this
module derives those effective per-word costs from the same
:class:`~repro.machine.config.NetworkConfig` and
:class:`~repro.qsmlib.config.SoftwareConfig` the DES uses, so the
prediction and the measurement share one source of truth.  The paper's
Table 3 "Observed Performance (HW + SW)" row is exactly these numbers,
which the ``table3`` experiment cross-checks against DES measurements.

What the analytic model deliberately **ignores** — per-message overhead
``o``, wire latency ``l``, the plan exchange, and the barrier — is what
QSM ignores; the gap between prediction and measurement at small ``n``
in Figures 1–4 is exactly these omitted costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import NetworkConfig
from repro.machine.cpu import CPUModel
from repro.msg.collectives import tree_barrier_cost_estimate
from repro.qsmlib.config import SoftwareConfig


@dataclass(frozen=True)
class CommCostModel:
    """Effective communication costs of one (network, software) pair."""

    network: NetworkConfig
    software: SoftwareConfig
    #: cycles/byte for marshalling copies (from the node's cache model).
    copy_cycles_per_byte: float

    @classmethod
    def for_machine(cls, network: NetworkConfig, software: SoftwareConfig, cpu: CPUModel) -> "CommCostModel":
        return cls(
            network=network,
            software=software,
            copy_cycles_per_byte=cpu.cache.copy_cycles_per_byte(),
        )

    # ------------------------------------------------------------------
    # Per-word effective costs (the "g" of the prediction formulas)
    # ------------------------------------------------------------------
    @property
    def put_word_cycles(self) -> float:
        """End-to-end pipelined cost per remote put word.

        Marshal + wire serialisation of (record header + payload) +
        unmarshal + the two buffer copies.
        """
        sw, g = self.software, self.network.gap_cycles_per_byte
        wire = (sw.record_header_bytes + sw.word_bytes) * g
        copies = 2.0 * self.copy_cycles_per_byte * sw.word_bytes
        return sw.marshal_record_cycles + wire + sw.unmarshal_record_cycles + copies

    @property
    def get_word_cycles(self) -> float:
        """End-to-end pipelined cost per remote get word (request + reply)."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        request = (
            sw.marshal_record_cycles
            + sw.record_header_bytes * g
            + sw.unmarshal_record_cycles
            + sw.get_service_cycles
        )
        reply = (
            sw.marshal_record_cycles
            + (sw.record_header_bytes + sw.word_bytes) * g
            + sw.unmarshal_record_cycles
            + 2.0 * self.copy_cycles_per_byte * sw.word_bytes
        )
        return request + reply

    # -- side-split costs (the s-QSM view: gap at processors AND memory) --
    @property
    def put_word_src_cycles(self) -> float:
        """Sender-side share of a put word: marshal + wire + copy."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        return (
            sw.marshal_record_cycles
            + (sw.record_header_bytes + sw.word_bytes) * g
            + self.copy_cycles_per_byte * sw.word_bytes
        )

    @property
    def put_word_dst_cycles(self) -> float:
        """Receiver-side share of a put word: unmarshal + copy."""
        sw = self.software
        return sw.unmarshal_record_cycles + self.copy_cycles_per_byte * sw.word_bytes

    @property
    def get_word_requester_cycles(self) -> float:
        """Requester-side share of a get word: request marshal + request
        wire + reply unmarshal + reply copy."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        return (
            sw.marshal_record_cycles
            + sw.record_header_bytes * g
            + sw.unmarshal_record_cycles
            + self.copy_cycles_per_byte * sw.word_bytes
        )

    @property
    def get_word_server_cycles(self) -> float:
        """Owner-side share of a get word: request unmarshal + service +
        reply marshal + reply copy + reply wire."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        return (
            sw.unmarshal_record_cycles
            + sw.get_service_cycles
            + sw.marshal_record_cycles
            + self.copy_cycles_per_byte * sw.word_bytes
            + (sw.record_header_bytes + sw.word_bytes) * g
        )

    @property
    def local_word_cycles(self) -> float:
        """Library cost of a locally-served request word."""
        sw = self.software
        return sw.marshal_record_cycles + self.copy_cycles_per_byte * sw.word_bytes

    # -- per-byte views (Table 3's units) --------------------------------
    @property
    def put_cycles_per_byte(self) -> float:
        return self.put_word_cycles / self.software.word_bytes

    @property
    def get_cycles_per_byte(self) -> float:
        return self.get_word_cycles / self.software.word_bytes

    # ------------------------------------------------------------------
    # Phase-level overheads the predictions ignore (measured reality)
    # ------------------------------------------------------------------
    def barrier_cycles(self, p: int) -> float:
        """Estimated software barrier time (BSP's L; Table 3's last row).

        Two tree sweeps along the critical path, plus the second
        child's receive that each internal up-sweep level serialises at
        its parent (validated within ~3% of the DES-measured barrier in
        the test suite).
        """
        import math

        base = tree_barrier_cost_estimate(
            self.network, p, sw_hop_cycles=self.software.barrier_hop_cycles
        )
        depth = int(math.floor(math.log2(p))) if p > 1 else 0
        extra_levels = max(0, depth - 1) + (1 if p > 2 else 0)
        from repro.msg.collectives import CONTROL_BYTES

        second_child = self.network.message_recv_cycles(CONTROL_BYTES) + (
            self.software.barrier_hop_cycles
        )
        return base + extra_levels * second_child

    def plan_exchange_cycles(self, p: int) -> float:
        """Estimated plan-distribution time per sync (all-to-all small msgs)."""
        if p <= 1:
            return 0.0
        nbytes = self.software.message_header_bytes + self.software.plan_entry_bytes
        per_msg = self.network.message_send_cycles(nbytes)
        return (p - 1) * per_msg + self.network.latency_cycles + self.network.message_recv_cycles(nbytes)

    def sync_floor_cycles(self, p: int) -> float:
        """Approximate cost of an *empty* sync (plan + barrier + fixed).

        This is the per-phase constant that makes measured communication
        exceed QSM predictions at small problem sizes.
        """
        return (
            self.software.sync_fixed_cycles
            + self.plan_exchange_cycles(p)
            + self.barrier_cycles(p)
        )

    # -- fault-plan hooks (repro.faults) --------------------------------
    def fault_traffic_factor(self, plan) -> float:
        """Expected wire-traffic (and NIC-occupancy) multiplier under a
        :class:`~repro.faults.plan.FaultPlan`'s drop-with-retransmit:
        each crossing survives with probability ``1 - drop``, so every
        message is injected ``1/(1 - drop)`` times in expectation — and
        each retransmission re-pays the full ``o + g·bytes`` charge."""
        if plan is None or plan.drop_prob <= 0.0:
            return 1.0
        return 1.0 / (1.0 - plan.drop_prob)

    def fault_extra_latency_cycles(self, plan) -> float:
        """Expected extra per-delivery latency a fault plan injects:
        the mean jitter plus the expected retransmission wait (a
        geometric series over the exponential-backoff schedule)."""
        if plan is None:
            return 0.0
        extra = plan.delay_jitter_cycles
        d = plan.drop_prob
        if d > 0.0:
            t = plan.retransmit_timeout_cycles
            b = plan.retransmit_backoff_factor
            if d * b < 1.0:
                extra += d * t / (1.0 - d * b)
            else:
                # Diverging backoff: sum the (max_retransmits-)truncated
                # series explicitly.
                extra += sum(
                    d**k * t * b ** (k - 1) for k in range(1, plan.max_retransmits + 1)
                )
        return extra
