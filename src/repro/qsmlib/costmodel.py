"""Analytic mirror of the sync engine: effective per-word costs.

Model predictions (the QSM/BSP lines in Figures 1–3) charge ``g`` per
remote word.  The *effective* ``g`` of a real system is the hardware
gap plus all the software the library wraps around each word; this
module derives those effective per-word costs from the same
:class:`~repro.machine.config.NetworkConfig` and
:class:`~repro.qsmlib.config.SoftwareConfig` the DES uses, so the
prediction and the measurement share one source of truth.  The paper's
Table 3 "Observed Performance (HW + SW)" row is exactly these numbers,
which the ``table3`` experiment cross-checks against DES measurements.

What the analytic model deliberately **ignores** — per-message overhead
``o``, wire latency ``l``, the plan exchange, and the barrier — is what
QSM ignores; the gap between prediction and measurement at small ``n``
in Figures 1–4 is exactly these omitted costs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.machine.config import FlatTopology, NetworkConfig, Topology
from repro.machine.cpu import CPUModel
from repro.msg.collectives import tree_barrier_cost_estimate
from repro.qsmlib.config import SoftwareConfig


@dataclass(frozen=True)
class CommCostModel:
    """Effective communication costs of one (network, software) pair."""

    network: NetworkConfig
    software: SoftwareConfig
    #: cycles/byte for marshalling copies (from the node's cache model).
    copy_cycles_per_byte: float
    #: Machine topology: the per-word properties below price the
    #: network (inter-node) tier; :meth:`intra_tier` and
    #: :meth:`effective` expose the cheap tier and the traffic-weighted
    #: mix under a cluster topology.
    topology: Topology = field(default_factory=FlatTopology)

    @classmethod
    def for_machine(
        cls,
        network: NetworkConfig,
        software: SoftwareConfig,
        cpu: CPUModel,
        topology: Optional[Topology] = None,
    ) -> "CommCostModel":
        return cls(
            network=network,
            software=software,
            copy_cycles_per_byte=cpu.cache.copy_cycles_per_byte(),
            topology=FlatTopology() if topology is None else topology,
        )

    # ------------------------------------------------------------------
    # Tier views (cluster topology)
    # ------------------------------------------------------------------
    def intra_tier(self) -> "CommCostModel":
        """This cost model re-priced at the intra-node tier: the same
        software layer over the cheap shared-memory ``g/o/l``.  Identity
        on a flat topology (there is only one tier)."""
        topo = self.topology
        if topo.is_flat:
            return self
        net = dataclasses.replace(
            self.network,
            gap_cycles_per_byte=topo.intra_gap_cycles_per_byte,
            overhead_cycles=topo.intra_overhead_cycles,
            latency_cycles=topo.intra_latency_cycles,
        )
        return dataclasses.replace(self, network=net, topology=FlatTopology())

    def effective(self, p: int):
        """The traffic-weighted tier mix for ``p`` processors.

        Under uniformly spread destinations a fraction
        ``f = (cores_per_node - 1) / (p - 1)`` of each processor's
        remote words stays on its node, so every effective per-word
        cost mixes as ``f·intra + (1-f)·inter`` (docs/MODEL.md).
        Returns ``self`` unchanged on a flat topology (``f = 0``), so
        topology-aware models degenerate to their flat twins there —
        the golden tests pin this.
        """
        f = self.topology.intra_peer_fraction(p)
        if f <= 0.0:
            return self
        return _MixedCostModel(self, self.intra_tier(), f)

    # ------------------------------------------------------------------
    # Per-word effective costs (the "g" of the prediction formulas)
    # ------------------------------------------------------------------
    @property
    def put_word_cycles(self) -> float:
        """End-to-end pipelined cost per remote put word.

        Marshal + wire serialisation of (record header + payload) +
        unmarshal + the two buffer copies.
        """
        sw, g = self.software, self.network.gap_cycles_per_byte
        wire = (sw.record_header_bytes + sw.word_bytes) * g
        copies = 2.0 * self.copy_cycles_per_byte * sw.word_bytes
        return sw.marshal_record_cycles + wire + sw.unmarshal_record_cycles + copies

    @property
    def get_word_cycles(self) -> float:
        """End-to-end pipelined cost per remote get word (request + reply)."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        request = (
            sw.marshal_record_cycles
            + sw.record_header_bytes * g
            + sw.unmarshal_record_cycles
            + sw.get_service_cycles
        )
        reply = (
            sw.marshal_record_cycles
            + (sw.record_header_bytes + sw.word_bytes) * g
            + sw.unmarshal_record_cycles
            + 2.0 * self.copy_cycles_per_byte * sw.word_bytes
        )
        return request + reply

    # -- side-split costs (the s-QSM view: gap at processors AND memory) --
    @property
    def put_word_src_cycles(self) -> float:
        """Sender-side share of a put word: marshal + wire + copy."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        return (
            sw.marshal_record_cycles
            + (sw.record_header_bytes + sw.word_bytes) * g
            + self.copy_cycles_per_byte * sw.word_bytes
        )

    @property
    def put_word_dst_cycles(self) -> float:
        """Receiver-side share of a put word: unmarshal + copy."""
        sw = self.software
        return sw.unmarshal_record_cycles + self.copy_cycles_per_byte * sw.word_bytes

    @property
    def get_word_requester_cycles(self) -> float:
        """Requester-side share of a get word: request marshal + request
        wire + reply unmarshal + reply copy."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        return (
            sw.marshal_record_cycles
            + sw.record_header_bytes * g
            + sw.unmarshal_record_cycles
            + self.copy_cycles_per_byte * sw.word_bytes
        )

    @property
    def get_word_server_cycles(self) -> float:
        """Owner-side share of a get word: request unmarshal + service +
        reply marshal + reply copy + reply wire."""
        sw, g = self.software, self.network.gap_cycles_per_byte
        return (
            sw.unmarshal_record_cycles
            + sw.get_service_cycles
            + sw.marshal_record_cycles
            + self.copy_cycles_per_byte * sw.word_bytes
            + (sw.record_header_bytes + sw.word_bytes) * g
        )

    @property
    def local_word_cycles(self) -> float:
        """Library cost of a locally-served request word."""
        sw = self.software
        return sw.marshal_record_cycles + self.copy_cycles_per_byte * sw.word_bytes

    # -- per-byte views (Table 3's units) --------------------------------
    @property
    def put_cycles_per_byte(self) -> float:
        return self.put_word_cycles / self.software.word_bytes

    @property
    def get_cycles_per_byte(self) -> float:
        return self.get_word_cycles / self.software.word_bytes

    # ------------------------------------------------------------------
    # Phase-level overheads the predictions ignore (measured reality)
    # ------------------------------------------------------------------
    def barrier_cycles(self, p: int) -> float:
        """Estimated software barrier time (BSP's L; Table 3's last row).

        Two tree sweeps along the critical path, plus the second
        child's receive that each internal up-sweep level serialises at
        its parent (validated within ~3% of the DES-measured barrier in
        the test suite).
        """
        import math

        base = tree_barrier_cost_estimate(
            self.network, p, sw_hop_cycles=self.software.barrier_hop_cycles
        )
        depth = int(math.floor(math.log2(p))) if p > 1 else 0
        extra_levels = max(0, depth - 1) + (1 if p > 2 else 0)
        from repro.msg.collectives import CONTROL_BYTES

        second_child = self.network.message_recv_cycles(CONTROL_BYTES) + (
            self.software.barrier_hop_cycles
        )
        return base + extra_levels * second_child

    def plan_exchange_cycles(self, p: int) -> float:
        """Estimated plan-distribution time per sync (all-to-all small msgs)."""
        if p <= 1:
            return 0.0
        nbytes = self.software.message_header_bytes + self.software.plan_entry_bytes
        per_msg = self.network.message_send_cycles(nbytes)
        return (p - 1) * per_msg + self.network.latency_cycles + self.network.message_recv_cycles(nbytes)

    def sync_floor_cycles(self, p: int) -> float:
        """Approximate cost of an *empty* sync (plan + barrier + fixed).

        This is the per-phase constant that makes measured communication
        exceed QSM predictions at small problem sizes.
        """
        return (
            self.software.sync_fixed_cycles
            + self.plan_exchange_cycles(p)
            + self.barrier_cycles(p)
        )

    # -- fault-plan hooks (repro.faults) --------------------------------
    def fault_traffic_factor(self, plan) -> float:
        """Expected wire-traffic (and NIC-occupancy) multiplier under a
        :class:`~repro.faults.plan.FaultPlan`'s drop-with-retransmit:
        each crossing survives with probability ``1 - drop``, so every
        message is injected ``1/(1 - drop)`` times in expectation — and
        each retransmission re-pays the full ``o + g·bytes`` charge."""
        if plan is None or plan.drop_prob <= 0.0:
            return 1.0
        return 1.0 / (1.0 - plan.drop_prob)

    def fault_extra_latency_cycles(self, plan) -> float:
        """Expected extra per-delivery latency a fault plan injects:
        the mean jitter plus the expected retransmission wait (a
        geometric series over the exponential-backoff schedule)."""
        if plan is None:
            return 0.0
        extra = plan.delay_jitter_cycles
        d = plan.drop_prob
        if d > 0.0:
            t = plan.retransmit_timeout_cycles
            b = plan.retransmit_backoff_factor
            if d * b < 1.0:
                extra += d * t / (1.0 - d * b)
            else:
                # Diverging backoff: sum the (max_retransmits-)truncated
                # series explicitly.
                extra += sum(
                    d**k * t * b ** (k - 1) for k in range(1, plan.max_retransmits + 1)
                )
        return extra


#: Per-word cost names mixed tier-wise by :class:`_MixedCostModel`.
_WORD_COST_NAMES = (
    "put_word_cycles",
    "get_word_cycles",
    "put_word_src_cycles",
    "put_word_dst_cycles",
    "get_word_requester_cycles",
    "get_word_server_cycles",
    "local_word_cycles",
)


class _MixedCostModel:
    """Effective costs of a cluster topology: ``f·intra + (1-f)·inter``.

    Duck-types the slice of :class:`CommCostModel` the prediction models
    consume — the per-word costs are mixed eagerly; the phase-level
    overheads (barrier, plan exchange) delegate to the inter tier, since
    the barrier tree and plan all-to-all cross nodes; ``network`` is a
    mixed-``o/l`` view for LogP's per-message accounting.
    """

    def __init__(self, inter: CommCostModel, intra: CommCostModel, f: float) -> None:
        self._inter = inter
        self.software = inter.software
        self.copy_cycles_per_byte = inter.copy_cycles_per_byte
        self.topology = inter.topology
        self.intra_fraction = f
        for name in _WORD_COST_NAMES:
            setattr(
                self, name, f * getattr(intra, name) + (1.0 - f) * getattr(inter, name)
            )
        self.network = dataclasses.replace(
            inter.network,
            overhead_cycles=(
                f * intra.network.overhead_cycles
                + (1.0 - f) * inter.network.overhead_cycles
            ),
            latency_cycles=(
                f * intra.network.latency_cycles
                + (1.0 - f) * inter.network.latency_cycles
            ),
            gap_cycles_per_byte=(
                f * intra.network.gap_cycles_per_byte
                + (1.0 - f) * inter.network.gap_cycles_per_byte
            ),
        )

    @property
    def put_cycles_per_byte(self) -> float:
        return self.put_word_cycles / self.software.word_bytes

    @property
    def get_cycles_per_byte(self) -> float:
        return self.get_word_cycles / self.software.word_bytes

    def barrier_cycles(self, p: int) -> float:
        return self._inter.barrier_cycles(p)

    def plan_exchange_cycles(self, p: int) -> float:
        return self._inter.plan_exchange_cycles(p)

    def sync_floor_cycles(self, p: int) -> float:
        return self._inter.sync_floor_cycles(p)

    def fault_traffic_factor(self, plan) -> float:
        return self._inter.fault_traffic_factor(plan)

    def fault_extra_latency_cycles(self, plan) -> float:
        return self._inter.fault_extra_latency_cycles(plan)


# ----------------------------------------------------------------------
# Vectorized phase pricing (the epoch kernel's cost tables)
# ----------------------------------------------------------------------
#
# The epoch sync path (see repro.qsmlib.epoch) prices a whole phase at
# once: every per-pair, per-message and per-chunk charge the DES node
# processes would accumulate step by step is computed here as numpy
# array math over the realized traffic matrices.  Bit-identity with the
# DES demands care with float evaluation order: every expression below
# mirrors the exact left-to-right arithmetic of
# ``SyncEngine._node_proc`` (an ``int * float`` in Python and an
# ``int64 * float64`` broadcast perform the same IEEE-754 operation,
# and ``np.cumsum`` is a strictly sequential accumulate, unlike the
# pairwise ``np.sum``).


@dataclass
class BurstSchedule:
    """One sender's precomputed chunk stream for one exchange stage.

    Parallel lists, one element per wire chunk in injection order:
    destination pid, CPU gap charged before the chunk (marshalling; only
    the first chunk of each message carries it), send-NIC occupancy, and
    receive-NIC hold.  All plain Python lists of floats/ints: the kernel
    folds them with sequential scalar adds into heap tuples, and a
    ``.tolist()`` here is cheaper than per-element ``np.float64`` boxing
    there.
    """

    dsts: list
    gaps: list
    occupancy: list
    holds: list
    total_bytes: int
    count: int
    #: Per-chunk wire latencies and receive-queue indices (cluster
    #: topology only; ``None`` means the flat network's single latency
    #: and queue == destination pid).  A queue index >= p addresses the
    #: shared ingress wire of node ``queue - p``.
    lats: Optional[list] = None
    queues: Optional[list] = None


@dataclass
class EpochTables:
    """Everything the epoch kernel needs to replay one phase.

    Indexed by pid throughout.  ``None`` entries in the send lists mean
    that sender injects nothing in that stage.
    """

    p: int
    #: Entry bookkeeping charged after compute (sync_fixed + local words).
    entry_overhead: np.ndarray
    #: Plan stage: every node sends p-1 equal-size messages.
    plan_occupancy: float
    plan_hold: float
    plan_dsts: list
    plan_bytes: int
    #: Data stage (puts + get requests), then reply stage (get replies).
    data_sends: list
    reply_sends: list
    #: Chunks each receiver waits for per stage (column sums).
    expected_data: list
    expected_reply: list
    #: Post-receive unmarshal/service totals per receiver (sequential
    #: accumulation over ascending source, exactly as the DES adds them).
    unmarshal_data: list
    unmarshal_reply: list
    #: Barrier control messages.
    control_occupancy: float
    control_hold: float
    #: Cluster topology extras (all ``None``/unused on the flat path,
    #: which stays bit-pinned to the pre-topology tables).
    #: ``node_of[pid]`` maps a core to its node; receive queues are
    #: ``p`` core engines followed by ``n_nodes`` shared node wires.
    node_of: Optional[list] = None
    #: Per-pid plan-stage chunk streams (tier-priced; replaces the
    #: uniform plan_occupancy/plan_hold scalars).
    plan_sends: Optional[list] = None
    #: Barrier control (occupancy, hold, latency) per tier.
    control_intra: Optional[tuple] = None
    control_inter: Optional[tuple] = None


def _peer_matrix(p: int, schedule: str) -> np.ndarray:
    """Row *pid* is that sender's destination order (runtime._peer_order)."""
    if p == 1:
        return np.zeros((1, 0), dtype=np.int64)
    if schedule == "staggered":
        return (np.arange(p)[:, None] + np.arange(1, p)[None, :]) % p
    base = np.tile(np.arange(p), (p, 1))
    return base[base != np.arange(p)[:, None]].reshape(p, p - 1)


class _TierMatrices:
    """Per-pair (src, dst) charge matrices of a cluster topology.

    ``o/g`` price the sender's injection, ``ho/hg`` the receive-side
    hold (core engine intra, shared node wire inter), ``lat`` the wire
    latency, and ``queue`` the receive-queue index (dst core for intra,
    ``p + node`` for inter) — everything the epoch kernel needs to
    mirror the DES's tier routing chunk by chunk.
    """

    __slots__ = ("o", "g", "ho", "hg", "lat", "queue", "node_of", "n_nodes")

    def __init__(self, topology, network: NetworkConfig, p: int) -> None:
        c = topology.cores_per_node
        node_of = np.arange(p) // c
        same = node_of[:, None] == node_of[None, :]
        wire = topology.node_wire_gap_cycles_per_byte
        wire_gap = network.gap_cycles_per_byte if wire is None else wire
        self.o = np.where(same, topology.intra_overhead_cycles, network.overhead_cycles)
        self.g = np.where(
            same, topology.intra_gap_cycles_per_byte, network.gap_cycles_per_byte
        )
        self.ho = self.o
        self.hg = np.where(same, topology.intra_gap_cycles_per_byte, wire_gap)
        self.lat = np.where(
            same, topology.intra_latency_cycles, network.latency_cycles
        )
        self.queue = np.where(same, np.arange(p)[None, :], p + node_of[None, :])
        self.node_of = node_of
        self.n_nodes = int(node_of[-1]) + 1


def _burst_schedules(words, gap_m, wire_m, perm, sw, network, tier=None):
    """Flatten per-pair (words, gap, wire) matrices into per-sender
    chunk streams plus the per-receiver expected chunk counts.

    All senders' streams are built in one batch of whole-matrix passes
    (row-major order == each sender's injection order) and then sliced
    per pid, rather than re-running the small-array pipeline p times.
    With a :class:`_TierMatrices` *tier*, every per-chunk charge is
    looked up per (src, dst) pair instead of the flat scalars.
    """
    p = words.shape[0]
    hdr = sw.message_header_bytes
    maxb = sw.max_message_bytes
    o = network.overhead_cycles
    g = network.gap_cycles_per_byte
    full, rest_m = np.divmod(wire_m, maxb)
    cnt_m = full + (rest_m > 0)
    expected = cnt_m.sum(axis=0).tolist()
    rows = np.arange(p)[:, None]
    cnt_o = cnt_m[rows, perm]  # (p, p-1), row = sender's injection order
    pid_chunks = cnt_o.sum(axis=1)
    total = int(pid_chunks.sum())
    if total == 0:
        return [None] * p, expected
    # Messages without a wire chunk contribute nothing on the fast path
    # (their marshal gap never attaches to an entry), so select on chunk
    # count rather than word count.  Boolean row-major selection keeps
    # every sender's message order.
    mask = cnt_o > 0
    msg_cnt = cnt_o[mask]
    msg_dst = np.broadcast_to(perm, cnt_o.shape)[mask]
    msg_rest = rest_m[rows, perm][mask]
    msg_gap = gap_m[rows, perm][mask]
    nbytes = np.full(total, hdr + maxb, dtype=np.int64)
    ends = np.cumsum(msg_cnt)
    tail = msg_rest > 0
    nbytes[ends[tail] - 1] = hdr + msg_rest[tail]
    gaps = np.zeros(total)
    gaps[ends - msg_cnt] = msg_gap
    dst_rep = np.repeat(msg_dst, msg_cnt)
    if tier is None:
        # message_send_cycles / message_recv_cycles, elementwise.
        occ = o + nbytes * g
        hold_list = occ_list = occ.tolist()
        lat_list = queue_list = None
    else:
        src_rep = np.repeat(
            np.broadcast_to(np.arange(p)[:, None], cnt_o.shape)[mask], msg_cnt
        )
        o_c = tier.o[src_rep, dst_rep]
        g_c = tier.g[src_rep, dst_rep]
        # Same elementwise ``o + nbytes * g`` the DES computes per tier.
        occ_list = (o_c + nbytes * g_c).tolist()
        hold_list = (tier.ho[src_rep, dst_rep] + nbytes * tier.hg[src_rep, dst_rep]).tolist()
        lat_list = tier.lat[src_rep, dst_rep].tolist()
        queue_list = tier.queue[src_rep, dst_rep].tolist()
    dst_list = dst_rep.tolist()
    gap_list = gaps.tolist()
    # Per-sender totals: header bytes per chunk plus the row's wire
    # bytes (zero-chunk messages have zero wire bytes, so row sums over
    # the full matrix are exact).
    row_bytes = wire_m.sum(axis=1) + hdr * pid_chunks
    offsets = np.concatenate(([0], np.cumsum(pid_chunks))).tolist()
    sends = []
    for pid in range(p):
        lo, hi = offsets[pid], offsets[pid + 1]
        if lo == hi:
            sends.append(None)
            continue
        sends.append(
            BurstSchedule(
                dsts=dst_list[lo:hi],
                gaps=gap_list[lo:hi],
                occupancy=occ_list[lo:hi],
                holds=hold_list[lo:hi],
                total_bytes=int(row_bytes[pid]),
                count=hi - lo,
                lats=None if lat_list is None else lat_list[lo:hi],
                queues=None if queue_list is None else queue_list[lo:hi],
            )
        )
    return sends, expected


def build_epoch_tables(
    traffic, local_words, sw, network, cpu, topology=None
) -> EpochTables:
    """Price one phase's exchange for every node with array math.

    *traffic* is the realized :class:`~repro.qsmlib.plan.PhaseTraffic`;
    the result mirrors every charge of ``SyncEngine._node_proc``'s fast
    path bit-for-bit (the golden equivalence tests pin this).  A cluster
    *topology* swaps the flat scalar charges for per-pair tier lookups
    (see :class:`_TierMatrices`); ``None``/flat keeps the pre-topology
    tables byte for byte.
    """
    p = traffic.p
    tier = (
        None
        if topology is None or topology.is_flat
        else _TierMatrices(topology, network, p)
    )
    put_w = traffic.put_words
    get_w = traffic.get_words
    wb = sw.word_bytes
    rh = sw.record_header_bytes
    marshal = sw.marshal_record_cycles
    unmarshal = sw.unmarshal_record_cycles
    rate = cpu.cache.copy_cycles_per_byte()
    rate_res = cpu.cache.copy_cycles_per_byte(resident=True)

    entry_overhead = sw.sync_fixed_cycles + local_words * (
        marshal + wb * rate_res
    )

    perm = _peer_matrix(p, sw.exchange_schedule)

    # -- data stage: puts + get requests, sender pid -> dst ------------
    words_d = put_w + get_w
    gap_d = words_d * marshal + (put_w * wb) * rate
    wire_d = put_w * (rh + wb) + get_w * rh
    data_sends, expected_data = _burst_schedules(
        words_d, gap_d, wire_d, perm, sw, network, tier=tier
    )
    unm_d = words_d * unmarshal + (put_w * wb) * rate + get_w * sw.get_service_cycles
    unmarshal_data = np.cumsum(unm_d, axis=0)[-1].tolist()

    # -- reply stage: get replies flow owner -> requester --------------
    words_r = get_w.T
    gap_r = words_r * marshal + (words_r * wb) * rate
    wire_r = words_r * (rh + wb)
    reply_sends, expected_reply = _burst_schedules(
        words_r, gap_r, wire_r, perm, sw, network, tier=tier
    )
    unm_r = words_r * unmarshal + (words_r * wb) * rate
    unmarshal_reply = np.cumsum(unm_r, axis=0)[-1].tolist()

    plan_bytes = sw.message_header_bytes + sw.plan_entry_bytes
    from repro.msg.collectives import CONTROL_BYTES

    node_of = None
    plan_sends = None
    control_intra = None
    control_inter = None
    if tier is not None:
        node_of = tier.node_of.tolist()
        # Plan stage: p-1 equal-size gapless messages per sender, each
        # priced at its pair's tier (the DES's per-entry o + bytes·g).
        plan_sends = []
        for pid in range(p):
            row = perm[pid]
            plan_sends.append(
                BurstSchedule(
                    dsts=row.tolist(),
                    gaps=[0.0] * (p - 1),
                    occupancy=(tier.o[pid, row] + plan_bytes * tier.g[pid, row]).tolist(),
                    holds=(tier.ho[pid, row] + plan_bytes * tier.hg[pid, row]).tolist(),
                    total_bytes=(p - 1) * plan_bytes,
                    count=p - 1,
                    lats=tier.lat[pid, row].tolist(),
                    queues=tier.queue[pid, row].tolist(),
                )
            )
        topo = topology
        wire = topo.node_wire_gap_cycles_per_byte
        wire_gap = network.gap_cycles_per_byte if wire is None else wire
        control_intra = (
            topo.intra_overhead_cycles + CONTROL_BYTES * topo.intra_gap_cycles_per_byte,
            topo.intra_overhead_cycles + CONTROL_BYTES * topo.intra_gap_cycles_per_byte,
            topo.intra_latency_cycles,
        )
        control_inter = (
            network.overhead_cycles + CONTROL_BYTES * network.gap_cycles_per_byte,
            network.overhead_cycles + CONTROL_BYTES * wire_gap,
            network.latency_cycles,
        )

    return EpochTables(
        p=p,
        entry_overhead=entry_overhead,
        plan_occupancy=network.message_send_cycles(plan_bytes),
        plan_hold=network.message_recv_cycles(plan_bytes),
        plan_dsts=[row.tolist() for row in perm],
        plan_bytes=plan_bytes,
        data_sends=data_sends,
        reply_sends=reply_sends,
        expected_data=expected_data,
        expected_reply=expected_reply,
        unmarshal_data=unmarshal_data,
        unmarshal_reply=unmarshal_reply,
        control_occupancy=network.message_send_cycles(CONTROL_BYTES),
        control_hold=network.message_recv_cycles(CONTROL_BYTES),
        node_of=node_of,
        plan_sends=plan_sends,
        control_intra=control_intra,
        control_inter=control_inter,
    )
