"""Configuration of the shared-memory library's software layer.

Table 3 of the paper distinguishes raw *hardware* network performance
(g = 3 cycles/byte, o = 400, l = 1600) from the *observed* performance
through the shared-memory library software: 35 cycles/byte for puts,
287 cycles/byte for gets, and a 25500-cycle 16-processor barrier.  The
difference is software: every remote word carries a control record,
marshalling copies data through buffers, and remote get requests pay a
service cost at the owning node.

:class:`SoftwareConfig` parameterises those costs.  The defaults are
calibrated so the *measured* Table 3 experiment of this reproduction
lands on the paper's observed values (see ``EXPERIMENTS.md``); the
calibration is two scalars (``get_service_cycles``,
``barrier_hop_cycles``) — everything else follows from first principles
(header sizes, copy costs through the cache model).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from repro.util.validation import check_nonnegative, check_positive


class SyncPath(str, Enum):
    """How ``sync()`` is priced in the simulator.

    All three paths are bit-identical in every observable timing (the
    equivalence and golden tests pin this); they differ only in how much
    Python the kernel executes per simulated message:

    * ``SLOW`` — the per-message oracle: every chunk is a full
      send-process/wire/receive-engine event chain.  Supports every
      feature (pacing, finite receive buffers, network faults, tracing).
    * ``FAST`` — batched analytic sends inside the DES (PR 1): a burst's
      injection times are computed in closed form, receives still run
      per message.
    * ``EPOCH`` — the vectorized epoch kernel: a whole phase is priced
      with numpy array math plus one flat merge loop; the discrete-event
      simulator is only touched to advance the clock at the phase
      boundary.  Falls back to ``FAST``/``SLOW`` automatically whenever
      a feature needs per-message fidelity (see docs/PERFORMANCE.md).
    """

    SLOW = "slow"
    FAST = "fast"
    EPOCH = "epoch"


def _resolve_sync_path(
    sync_path: Union[SyncPath, str, None], fast_sync: Optional[bool]
) -> SyncPath:
    """Resolve the configured path from field values and environment.

    Precedence: explicit ``sync_path`` > explicit ``fast_sync``
    (deprecated) > ``QSM_SYNC_PATH`` env > ``QSM_FAST_SYNC`` env
    (deprecated) > the :attr:`SyncPath.EPOCH` default.  The env reads
    let whole experiment pipelines (including ``--jobs`` workers, which
    inherit the environment) be flipped onto another path without
    threading a config through every layer — the equivalence tests and
    benchmarks rely on this; see docs/CHECKING.md.
    """
    if sync_path is not None:
        return SyncPath(sync_path)
    if fast_sync is not None:
        warnings.warn(
            "SoftwareConfig(fast_sync=...) is deprecated; use "
            "sync_path=SyncPath.FAST / SyncPath.SLOW instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return SyncPath.FAST if fast_sync else SyncPath.SLOW
    env = os.environ.get("QSM_SYNC_PATH")  # qsmlint: disable=QL107
    if env is not None:
        name = env.strip().lower()
        try:
            return SyncPath(name)
        except ValueError:
            valid = ", ".join(m.value for m in SyncPath)
            raise ValueError(
                f"QSM_SYNC_PATH={env!r} is not a sync path (expected one of: {valid})"
            ) from None
    env = os.environ.get("QSM_FAST_SYNC")  # qsmlint: disable=QL107
    if env is not None:
        warnings.warn(
            "the QSM_FAST_SYNC environment variable is deprecated; use "
            "QSM_SYNC_PATH=fast / QSM_SYNC_PATH=slow instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if env.strip().lower() in ("0", "false", "off"):
            return SyncPath.SLOW
        return SyncPath.FAST
    return SyncPath.EPOCH


@dataclass(frozen=True)
class SoftwareConfig:
    """Costs and formats of the bulk-synchronous library software."""

    #: Size of one shared-memory word.  All shared arrays use 64-bit
    #: elements; per-byte figures divide by this.
    word_bytes: int = 8

    #: Control record attached to every remote word (array id, global
    #: index, destination offset, flags).
    record_header_bytes: int = 16

    #: Fixed header on every aggregated network message.
    message_header_bytes: int = 32

    #: Data/reply messages are split into chunks of at most this many
    #: wire bytes so consecutive chunks pipeline through the send and
    #: receive NIC engines (real transports packetize; without this, a
    #: single huge message would serialise its full send *and* receive
    #: passes back to back).
    max_message_bytes: int = 16384

    #: Per-pair communication-plan entry exchanged before the data phase.
    plan_entry_bytes: int = 24

    #: CPU cycles to marshal one request record into a send buffer
    #: (excluding the payload copy, charged separately).
    marshal_record_cycles: float = 100.0

    #: CPU cycles to decode one record on the receiving side.
    unmarshal_record_cycles: float = 100.0

    #: Extra cycles at the owning node to service one get request:
    #: segment-table lookup, reply buffer management.
    get_service_cycles: float = 1770.0

    #: Software cycles added to each barrier-tree hop (interrupt +
    #: dispatch); calibrated so the 16-processor barrier measures near
    #: the paper's 25500 cycles.
    barrier_hop_cycles: float = 311.0

    #: Fixed per-sync bookkeeping at each node (entering/leaving the
    #: communication phase, resetting queues).
    sync_fixed_cycles: float = 500.0

    #: Idle cycles inserted between consecutive outgoing data/reply
    #: messages — §2's "limit the rate at which nodes send data so that
    #: they do not overrun receiving nodes" (Brewer & Kuszmaul).  0
    #: disables pacing; it only matters on networks with finite receive
    #: buffers (``NetworkConfig.recv_buffer_slots``).
    send_pacing_cycles: float = 0.0

    #: Order in which a node addresses its peers during the exchange.
    #: ``"staggered"`` is the library's contention-avoiding schedule
    #: (round r sends to (pid+r) mod p, so no two nodes target the same
    #: receiver in a round); ``"fixed"`` is the naive 0,1,2,... order
    #: every node shares, kept as an ablation — it funnels the early
    #: rounds into the low-numbered receive engines.
    exchange_schedule: str = "staggered"

    #: Which simulation path prices ``sync()`` — see :class:`SyncPath`.
    #: ``None`` (the default) resolves through the deprecated
    #: ``fast_sync`` field, then the ``QSM_SYNC_PATH`` / ``QSM_FAST_SYNC``
    #: environment variables, then :attr:`SyncPath.EPOCH`.  After
    #: ``__post_init__`` this is always a :class:`SyncPath` member.
    sync_path: Optional[Union[SyncPath, str]] = None

    #: Deprecated boolean alias for ``sync_path`` (``True`` →
    #: :attr:`SyncPath.FAST`, ``False`` → :attr:`SyncPath.SLOW`), kept so
    #: existing configs and the ``QSM_FAST_SYNC`` variable keep working.
    #: After ``__post_init__`` it is always a bool:
    #: ``sync_path is not SyncPath.SLOW``.
    fast_sync: Optional[bool] = None

    def __post_init__(self) -> None:
        path = _resolve_sync_path(self.sync_path, self.fast_sync)
        # Normalise through the frozen-dataclass wall so downstream code
        # (and repr/asdict) always sees one coherent pair of fields.
        object.__setattr__(self, "sync_path", path)
        object.__setattr__(self, "fast_sync", path is not SyncPath.SLOW)
        if self.exchange_schedule not in ("staggered", "fixed"):
            raise ValueError(
                f"exchange_schedule must be 'staggered' or 'fixed', "
                f"got {self.exchange_schedule!r}"
            )
        check_positive("word_bytes", self.word_bytes)
        check_positive("max_message_bytes", self.max_message_bytes)
        # check_nonnegative names the field and rejects NaN/inf, which a
        # bare `< 0` comparison would let through into every charge.
        for name in (
            "record_header_bytes",
            "message_header_bytes",
            "plan_entry_bytes",
            "marshal_record_cycles",
            "unmarshal_record_cycles",
            "get_service_cycles",
            "barrier_hop_cycles",
            "sync_fixed_cycles",
            "send_pacing_cycles",
        ):
            check_nonnegative(name, getattr(self, name))

    # -- wire sizing ----------------------------------------------------
    def put_wire_bytes(self, words: int) -> int:
        """Wire bytes for *words* put records including payload."""
        return words * (self.record_header_bytes + self.word_bytes)

    def get_request_wire_bytes(self, words: int) -> int:
        """Wire bytes for *words* get-request records (no payload)."""
        return words * self.record_header_bytes

    def get_reply_wire_bytes(self, words: int) -> int:
        """Wire bytes for *words* get-reply records (header + payload)."""
        return words * (self.record_header_bytes + self.word_bytes)

    def chunk_sizes(self, wire_bytes: int):
        """Split a message body into transport chunks (see
        ``max_message_bytes``); returns the list of chunk payload sizes."""
        if wire_bytes <= 0:
            return []
        full, rest = divmod(wire_bytes, self.max_message_bytes)
        sizes = [self.max_message_bytes] * full
        if rest:
            sizes.append(rest)
        return sizes
