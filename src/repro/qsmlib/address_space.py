"""The shared address space: registered arrays with layouts.

A :class:`SharedArray` is the unit of shared memory visible to QSM
programs.  Its authoritative contents live in one numpy array held by
the (driver-side) :class:`AddressSpace`; the *layout* determines which
simulated node owns each word, and therefore what communication a
``get``/``put`` generates.  Registration mirrors the appendix
algorithms' "allocate and register temporary structures" steps.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

import numpy as np

from repro.qsmlib.layout import Layout, LayoutMap


class SharedArray:
    """One registered shared-memory array."""

    def __init__(
        self,
        aid: int,
        name: str,
        n: int,
        p: int,
        layout: Layout = Layout.BLOCKED,
        dtype=np.int64,
        salt: int = 0,
    ) -> None:
        if n < 1:
            raise ValueError(f"array length must be >= 1, got {n}")
        self.aid = aid
        self.name = name
        self.n = n
        self.map = LayoutMap(layout=layout, n=n, p=p, salt=salt)
        self.data = np.zeros(n, dtype=dtype)
        self.registered = True

    @property
    def layout(self) -> Layout:
        return self.map.layout

    @property
    def dtype(self):
        return self.data.dtype

    def local_view(self, pid: int) -> np.ndarray:
        """The node-local portion (a real numpy view; BLOCKED only).

        Programs may read and write this view freely — it is node-local
        memory, costed through ``ctx.charge`` like any local work.
        """
        self._check_registered()
        return self.data[self.map.local_slice(pid)]

    def local_offset(self, pid: int) -> int:
        """Global index of the first word owned by *pid* (BLOCKED only)."""
        return self.map.local_slice(pid).start

    def owner_of(self, indices, validate: bool = True) -> np.ndarray:
        self._check_registered()
        return self.map.owner_of(np.asarray(indices, dtype=np.int64), validate=validate)

    def _check_registered(self) -> None:
        if not self.registered:
            raise RuntimeError(f"shared array {self.name!r} has been unregistered")

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SharedArray {self.name!r} n={self.n} {self.layout.value} {self.dtype}>"


class AddressSpace:
    """Registry of all shared arrays of one program run."""

    def __init__(self, p: int, default_salt: int = 0) -> None:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        self.p = p
        self.default_salt = default_salt
        self._arrays: Dict[int, SharedArray] = {}
        self._ids = itertools.count()

    def allocate(
        self,
        name: str,
        n: int,
        layout: Layout = Layout.BLOCKED,
        dtype=np.int64,
        salt: Optional[int] = None,
    ) -> SharedArray:
        """Register a new shared array (zero-initialised)."""
        aid = next(self._ids)
        arr = SharedArray(
            aid,
            name,
            n,
            self.p,
            layout=layout,
            dtype=dtype,
            salt=self.default_salt if salt is None else salt,
        )
        self._arrays[aid] = arr
        return arr

    def unregister(self, arr: SharedArray) -> None:
        """Drop *arr* from the space; further access raises."""
        if arr.aid not in self._arrays:
            raise KeyError(f"array {arr.name!r} is not registered here")
        arr.registered = False
        del self._arrays[arr.aid]

    def __iter__(self) -> Iterator[SharedArray]:
        return iter(self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    def get(self, aid: int) -> SharedArray:
        return self._arrays[aid]
