"""The per-processor programming interface of the QSM library.

A QSM program is a Python generator taking one :class:`QSMContext`.
Within a phase it may:

* read/write its node-local memory directly (``ctx.local(arr)`` views),
  charging the work via ``ctx.charge`` / ``ctx.charge_cycles``;
* enqueue shared-memory traffic with ``ctx.get*`` / ``ctx.put*``;
* allocate/free shared arrays collectively (``ctx.alloc`` / ``ctx.free``).

Phases are delimited by ``yield ctx.sync()``; get handles become
readable only after the sync, and puts become visible only after it —
the driver enforces both.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

import numpy as np

from repro.machine.cpu import CPUModel, OpProfile
from repro.qsmlib.address_space import AddressSpace, SharedArray
from repro.qsmlib.layout import Layout
from repro.qsmlib.requests import GetHandle, RequestQueue


class SyncToken:
    """Marker yielded by programs to end a phase."""

    __slots__ = ("pid",)

    def __init__(self, pid: int) -> None:
        self.pid = pid


class QSMContext:
    """One processor's view of the shared-memory machine."""

    def __init__(
        self,
        space: AddressSpace,
        pid: int,
        rng: np.random.Generator,
        cpu: CPUModel,
    ) -> None:
        self.space = space
        self.pid = pid
        self.p = space.p
        self.rng = rng
        self.cpu = cpu
        self.queue = RequestQueue(pid)
        self._compute_cycles = 0.0
        self._op_count = 0.0
        self._observations: list = []
        self._alloc_requests: Dict[str, tuple] = {}
        self._free_requests: list = []

    # ------------------------------------------------------------------
    # Local computation accounting
    # ------------------------------------------------------------------
    def charge(self, profile: OpProfile) -> float:
        """Charge a chunk of local work described by *profile*; returns cycles."""
        total = profile.total_instructions
        if not math.isfinite(total):
            raise ValueError(
                f"OpProfile totals must be finite, got {total!r} instructions"
            )
        cycles = self.cpu.cycles(profile)
        if not math.isfinite(cycles):
            raise ValueError(f"OpProfile costs a non-finite cycle count ({cycles!r})")
        self._compute_cycles += cycles
        self._op_count += total
        return cycles

    def charge_cycles(self, cycles: float, ops: float = 0.0) -> None:
        """Charge raw cycles (and optionally abstract ops) directly.

        Charges must be finite and nonnegative — NaN/inf would silently
        poison every downstream phase timing.
        """
        if not (math.isfinite(cycles) and math.isfinite(ops)):
            raise ValueError(
                f"charges must be finite, got cycles={cycles!r}, ops={ops!r}"
            )
        if cycles < 0 or ops < 0:
            raise ValueError("charges must be nonnegative")
        self._compute_cycles += cycles
        self._op_count += ops

    # ------------------------------------------------------------------
    # Shared memory access
    # ------------------------------------------------------------------
    def local(self, arr: SharedArray) -> np.ndarray:
        """This node's local portion of *arr* (BLOCKED layout) as a view."""
        return arr.local_view(self.pid)

    def local_offset(self, arr: SharedArray) -> int:
        return arr.local_offset(self.pid)

    def get(self, arr: SharedArray, indices) -> GetHandle:
        """Enqueue a read of ``arr[indices]``; data available after sync."""
        return self.queue.add_get(arr, indices)

    def get_range(self, arr: SharedArray, start: int, count: int) -> GetHandle:
        return self.queue.add_get_range(arr, start, count)

    def put(self, arr: SharedArray, indices, values) -> None:
        """Enqueue a write of ``values`` to ``arr[indices]``; visible after sync."""
        self.queue.add_put(arr, indices, values)

    def put_range(self, arr: SharedArray, start: int, values) -> None:
        self.queue.add_put_range(arr, start, values)

    # ------------------------------------------------------------------
    # Collective allocation (appendix: "allocate and register")
    # ------------------------------------------------------------------
    def alloc(
        self,
        name: str,
        n: int,
        layout: Layout = Layout.BLOCKED,
        dtype=np.int64,
    ) -> "SharedArrayRef":
        """Collectively allocate a shared array.

        Every processor must call ``alloc`` with identical arguments in
        the same phase; the array is usable after the next sync (its
        registration is part of the sync, as in the appendix programs).
        Returns a :class:`SharedArrayRef` that resolves after the sync.
        """
        spec = (n, layout, np.dtype(dtype))
        if name in self._alloc_requests:
            prev_spec, ref, _origin = self._alloc_requests[name]
            if prev_spec != spec:
                raise ValueError(f"conflicting alloc specs for {name!r} in one phase")
            return ref
        san = self.queue.sanitizer
        origin = san.enqueue_origin() if san is not None else None
        ref = SharedArrayRef(name)
        self._alloc_requests[name] = (spec, ref, origin)
        return ref

    def free(self, arr_or_ref) -> None:
        """Collectively unregister a shared array at the next sync."""
        san = self.queue.sanitizer
        origin = san.enqueue_origin() if san is not None else None
        self._free_requests.append((arr_or_ref, origin))

    # ------------------------------------------------------------------
    def observe(self, key: str, value: float) -> None:
        """Report an algorithm-level observation (B, r, x_i skews, ...)."""
        self._observations.append((key, float(value)))

    def sync(self) -> SyncToken:
        """End the current phase (programs do ``yield ctx.sync()``)."""
        return SyncToken(self.pid)

    # -- driver-side harvest (not part of the program API) ----------------
    def _drain_compute(self) -> tuple:
        out = (self._compute_cycles, self._op_count)
        self._compute_cycles = 0.0
        self._op_count = 0.0
        return out

    def _drain_observations(self) -> list:
        out = self._observations
        self._observations = []
        return out


class SharedArrayRef:
    """Deferred handle returned by :meth:`QSMContext.alloc`.

    Resolves to the real :class:`SharedArray` after the allocating sync;
    attribute access and indexing forward to it once bound.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._arr: Optional[SharedArray] = None

    def _bind(self, arr: SharedArray) -> None:
        self._arr = arr

    @property
    def array(self) -> SharedArray:
        if self._arr is None:
            raise RuntimeError(
                f"shared array {self._name!r} is not registered yet; "
                "it becomes usable after the sync following alloc()"
            )
        return self._arr

    def __getattr__(self, item: str) -> Any:
        return getattr(self.array, item)

    def __len__(self) -> int:
        return len(self.array)
