"""Sanitizer overhead benchmark: the disarmed path must stay free.

Re-runs the fig2 sample-sort sweep (the same grid as ``bench_perf.py``)
with the :mod:`repro.check` phase-conflict sanitizer *disarmed* — the
default for all experiment runs — and compares events/sec against the
committed ``benchmarks/BENCH_perf.json`` fast-path baseline, which
predates the instrumentation.  The ``queue.sanitizer is not None``
guards are supposed to cost one load + branch per enqueue call site,
so the budget matches ``bench_obs.py``: **< 3%** by default.

It also measures the sweep with the sanitizer *armed* (warn mode) and
reports the slowdown ratio — informational, not gated: shadow-set
construction is allowed to cost whatever the diagnostics are worth.

Two layers of defence, because shared machines drift more than 3%:

* a **deterministic** allocation probe — a disarmed run must create
  zero ``Diagnostic``/``PhaseSanitizer`` objects, or some integration
  site lost its ``is not None`` guard;
* the **timing** gate vs the committed baseline (``--check``), best-of
  ``--repeat`` passes like ``bench_perf.py``.  Because host CPU
  frequency can swing far more than 3% between measurement windows,
  the gate retries the whole measurement up to ``--retries`` times and
  passes if *any* round clears the floor — scheduler/frequency noise
  only ever adds time, so one clean round proves the code is capable
  of baseline speed.

Arming must also never change *simulated* timings — the sanitizer only
observes request queues, it never adds events — which the benchmark
asserts by comparing total comm cycles between the two passes.

Usage::

    PYTHONPATH=src python benchmarks/bench_check.py
    PYTHONPATH=src python benchmarks/bench_check.py \
        --check benchmarks/BENCH_perf.json --tolerance 0.03
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_perf import run_sweep_variant  # noqa: E402

from repro import check  # noqa: E402


def _live_check_objects() -> int:
    """Number of sanitizer objects currently alive.

    Deterministic complement to the timing gate: a disarmed run must
    allocate *zero* diagnostics/sanitizers, whatever the wall clock
    says.
    """
    import gc

    from repro.check.sanitizer import Diagnostic, PhaseSanitizer

    kinds = (Diagnostic, PhaseSanitizer)
    return sum(isinstance(o, kinds) for o in gc.get_objects())


def run_benchmark(jobs: int, repeat: int = 5, armed_repeat: int = 1) -> dict:
    check.disarm()
    disarmed = run_sweep_variant(fast_sync=True, jobs=jobs, repeat=repeat)
    leaked = _live_check_objects()
    if leaked:
        raise AssertionError(
            f"disarmed run allocated {leaked} sanitizer objects; "
            "an integration site is missing its `is not None` guard"
        )

    check.arm("warn")
    try:
        armed = run_sweep_variant(fast_sync=True, jobs=jobs, repeat=armed_repeat)
        n_diags = len(check.diagnostics())
    finally:
        check.disarm()

    if disarmed["comm_cycles"] != armed["comm_cycles"]:
        raise AssertionError("arming the sanitizer changed simulated timings")
    if n_diags:
        raise AssertionError(
            f"the fig2 sweep is expected to be sanitizer-clean, got {n_diags} diagnostics"
        )
    for rec in (disarmed, armed):
        del rec["comm_cycles"]
    return {
        "benchmark": "check_overhead_fig2_sweep",
        "jobs": jobs,
        "repeat": repeat,
        "host_cpus": os.cpu_count(),
        "disarmed": disarmed,
        "armed": armed,
        "armed_slowdown": round(armed["wall_seconds"] / disarmed["wall_seconds"], 3),
    }


def check_overhead(record: dict, baseline_path: str, tolerance: float) -> int:
    """Exit 1 if the *disarmed* path regressed beyond tolerance vs the
    pre-instrumentation baseline's fast-path events/sec."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_eps = baseline["fast"]["events_per_sec"]
    new_eps = record["disarmed"]["events_per_sec"]
    floor = base_eps * (1.0 - tolerance)
    overhead = 1.0 - new_eps / base_eps
    print(
        f"[check] disarmed-path events/sec: baseline={base_eps:,.0f}, "
        f"current={new_eps:,.0f} (overhead {overhead:+.1%}), "
        f"floor={floor:,.0f} (tolerance {tolerance:.0%})"
    )
    if new_eps < floor:
        print(
            "[check] FAIL: disarmed-sanitizer overhead exceeds tolerance",
            file=sys.stderr,
        )
        return 1
    print(
        f"[check] OK (armed-sanitizer slowdown: "
        f"{record['armed_slowdown']}x, informational)"
    )
    return 0


def _merge_best(best: dict, new: dict) -> dict:
    """Keep the faster (min-wall) disarmed/armed measurements across rounds."""
    if best is None:
        return new
    for key in ("disarmed", "armed"):
        if new[key]["wall_seconds"] < best[key]["wall_seconds"]:
            best[key] = new[key]
    best["armed_slowdown"] = round(
        best["armed"]["wall_seconds"] / best["disarmed"]["wall_seconds"], 3
    )
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="0 = one worker per CPU")
    parser.add_argument(
        "--repeat", type=int, default=5,
        help="disarmed passes (best-of; matches the baseline's methodology)",
    )
    parser.add_argument("--output", default=None, help="write the JSON record here")
    parser.add_argument("--check", metavar="BASELINE", help="gate against BENCH_perf.json")
    parser.add_argument("--tolerance", type=float, default=0.03, help="allowed drop")
    parser.add_argument(
        "--retries", type=int, default=3,
        help="measurement rounds for the --check gate; any clean round passes",
    )
    args = parser.parse_args(argv)

    rounds = max(1, args.retries) if args.check else 1
    record = None
    status = 0
    for attempt in range(rounds):
        record = _merge_best(record, run_benchmark(args.jobs, repeat=args.repeat))
        if not args.check:
            break
        status = check_overhead(record, args.check, args.tolerance)
        if status == 0:
            break
        if attempt < rounds - 1:
            print(f"[check] retrying (round {attempt + 2}/{rounds})...")
    print(json.dumps(record, indent=2))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"[wrote {args.output}]")
    return status


if __name__ == "__main__":
    sys.exit(main())
