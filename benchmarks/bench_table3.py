"""Table 3 regeneration: hardware vs observed (HW+SW) network performance.

Paper row: put 35 cycles/byte, get 287 cycles/byte, 16-processor
barrier 25500 cycles.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table3_observed import run as run_table3


def test_table3_observed_performance(benchmark):
    # Full fidelity always: the full-size transfer takes well under a
    # second, and the fast 2K-word transfer leaves the per-sync floor
    # unamortised (observed gap ~40 c/B instead of the asymptotic 35).
    result = run_once(benchmark, run_table3, fast=False)
    print()
    print(result.render())
    assert result.data["put_cpb"] == pytest.approx(35.0, rel=0.10)
    assert result.data["get_cpb"] == pytest.approx(287.0, rel=0.10)
    assert result.data["barrier"] == pytest.approx(25500.0, rel=0.05)
