"""Simulator performance benchmark: the Figure 2 sample-sort sweep.

Runs the fig2 grid (p=16, fast-mode n values, 3 reps) twice — once with
the batched-send fast path (``fast_sync=True``, the default) and once
on the slow per-chunk oracle path — and records wall-clock seconds,
total kernel events, events/second, and peak RSS for each, plus the
fast/slow speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py                # print + write
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 0       # all CPUs
    PYTHONPATH=src python benchmarks/bench_perf.py \
        --check benchmarks/BENCH_perf.json                       # regression gate

``--check BASELINE`` compares the fresh fast-path events/sec against the
committed baseline and exits non-zero if it has regressed by more than
``--tolerance`` (default 20%) — this is what ``make bench`` runs.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

import numpy as np

from repro.experiments.executor import effective_jobs, parallel_map
from repro.machine.config import MachineConfig
from repro.qsmlib.config import SoftwareConfig

#: The fig2 --fast grid (see repro.experiments.fig2_samplesort.FAST_NS).
SWEEP_NS = [8192, 65536, 250000]
SWEEP_REPS = 3
SWEEP_SEED = 0


def _bench_point(task) -> tuple:
    """One sweep point; returns (comm_cycles, sim_events).

    Module-level so it pickles for --jobs > 1; mirrors
    ``repro.experiments.sweeps._sweep_point_task`` but also reports the
    kernel event count the events/sec metric needs.
    """
    from repro.algorithms.samplesort import run_sample_sort
    from repro.qsmlib.program import RunConfig

    machine, n, run_seed, fast_sync = task
    rng = np.random.default_rng(run_seed)
    out = run_sample_sort(
        rng.integers(0, 2**62, size=n),
        RunConfig(
            machine=machine,
            software=SoftwareConfig(fast_sync=fast_sync),
            seed=run_seed,
            check_semantics=False,
        ),
    )
    return out.run.comm_cycles, out.run.sim_events


def _peak_rss_mb() -> float:
    """Peak resident set size of this process and its children, in MiB."""
    ru_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    ru_children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    kb = max(ru_self, ru_children)
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        kb /= 1024.0
    return kb / 1024.0


def run_sweep_variant(fast_sync: bool, jobs: int, repeat: int) -> dict:
    """Run the whole grid one way; returns the measurement record.

    The grid is repeated ``repeat`` times and the *minimum* wall time is
    reported — the standard estimator for "how fast is the code", since
    scheduler and frequency noise only ever add time.
    """
    machine = MachineConfig()  # p=16, Table 2/3 defaults
    tasks = [
        (machine, n, SWEEP_SEED + 1000 * r + 1, fast_sync)
        for n in SWEEP_NS
        for r in range(SWEEP_REPS)
    ]
    wall = float("inf")
    results = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        pass_results = parallel_map(_bench_point, tasks, jobs=jobs)
        wall = min(wall, time.perf_counter() - t0)
        if results is not None and pass_results != results:
            raise AssertionError("non-deterministic sweep results across repeats")
        results = pass_results
    events = int(sum(ev for _comm, ev in results))
    return {
        "wall_seconds": round(wall, 4),
        "sim_events": events,
        "events_per_sec": round(events / wall, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "comm_cycles": [comm for comm, _ev in results],
    }


def run_benchmark(jobs: int, repeat: int = 3) -> dict:
    fast = run_sweep_variant(fast_sync=True, jobs=jobs, repeat=repeat)
    slow = run_sweep_variant(fast_sync=False, jobs=jobs, repeat=repeat)
    identical = fast["comm_cycles"] == slow["comm_cycles"]
    for rec in (fast, slow):
        del rec["comm_cycles"]  # raw per-point data, not a benchmark metric
    return {
        "benchmark": "fig2_samplesort_sweep",
        "machine_p": MachineConfig().p,
        "ns": SWEEP_NS,
        "reps": SWEEP_REPS,
        "seed": SWEEP_SEED,
        "jobs": effective_jobs(jobs),
        "repeat": repeat,
        "host_cpus": os.cpu_count(),
        "fast": fast,
        "slow": slow,
        "speedup": round(slow["wall_seconds"] / fast["wall_seconds"], 3),
        "event_ratio": round(slow["sim_events"] / fast["sim_events"], 3),
        "timings_identical": identical,
    }


def check_regression(record: dict, baseline_path: str, tolerance: float) -> int:
    """Exit status 1 if fast-path events/sec regressed beyond tolerance."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_eps = baseline["fast"]["events_per_sec"]
    new_eps = record["fast"]["events_per_sec"]
    floor = base_eps * (1.0 - tolerance)
    print(
        f"[check] fast-path events/sec: baseline={base_eps:,.0f}, "
        f"current={new_eps:,.0f}, floor={floor:,.0f} (tolerance {tolerance:.0%})"
    )
    if new_eps < floor:
        print("[check] FAIL: events/sec regressed beyond tolerance", file=sys.stderr)
        return 1
    if not record["timings_identical"]:
        print("[check] FAIL: fast/slow paths disagreed on simulated timings", file=sys.stderr)
        return 1
    print("[check] OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="0 = one worker per CPU")
    parser.add_argument("--repeat", type=int, default=3, help="passes per variant (best-of)")
    parser.add_argument("--output", default=None, help="write the JSON record here")
    parser.add_argument("--check", metavar="BASELINE", help="compare against a baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.2, help="allowed events/sec drop")
    args = parser.parse_args(argv)

    record = run_benchmark(args.jobs, repeat=args.repeat)
    print(json.dumps(record, indent=2))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"[wrote {args.output}]")
    if args.check:
        return check_regression(record, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
