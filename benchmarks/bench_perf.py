"""Simulator performance benchmark: the Figure 2 sample-sort sweep.

Runs the fig2 grid (p=16, fast-mode n values, 3 reps) once per sync
path — the per-chunk ``slow`` oracle, the batched-send ``fast`` DES
path, and the vectorized ``epoch`` kernel — and records wall-clock
seconds, total kernel events, events/second, and peak RSS for each,
plus the pairwise speedups and a per-pair bit-identity verdict on the
simulated timings (``comm_cycles`` equality across every sweep point).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py                # print + write
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 0       # all CPUs
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke        # reduced CI grid
    PYTHONPATH=src python benchmarks/bench_perf.py \
        --check benchmarks/BENCH_perf.json                       # regression gate

``--check BASELINE`` compares the fresh fastest-path (epoch)
events/sec against the committed baseline and exits non-zero if it has
regressed by more than ``--tolerance`` (default 20%) — this is what
``make bench`` runs.  ``--smoke`` shrinks the grid to one pass so CI
can cheaply assert that all three paths still report bit-identical
timings; it always fails the run on a timing mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

import numpy as np

from repro.experiments.executor import effective_jobs, parallel_map
from repro.machine.config import MachineConfig
from repro.qsmlib.config import SoftwareConfig

#: The fig2 --fast grid (see repro.experiments.fig2_samplesort.FAST_NS).
SWEEP_NS = [8192, 65536, 250000]
SWEEP_REPS = 3
SWEEP_SEED = 0

#: Reduced grid for ``--smoke`` (CI): one mid-size point, one rep.
SMOKE_NS = [65536]
SMOKE_REPS = 1

#: Measurement order: slowest first so the committed record reads
#: oracle -> optimised.
SYNC_PATHS = ("slow", "fast", "epoch")


def _bench_point(task) -> tuple:
    """One sweep point; returns (comm_cycles, sim_events).

    Module-level so it pickles for --jobs > 1; mirrors
    ``repro.experiments.sweeps._sweep_point_task`` but also reports the
    kernel event count the events/sec metric needs.
    """
    from repro.algorithms.samplesort import run_sample_sort
    from repro.qsmlib.program import RunConfig

    machine, n, run_seed, sync_path = task
    rng = np.random.default_rng(run_seed)
    out = run_sample_sort(
        rng.integers(0, 2**62, size=n),
        RunConfig(
            machine=machine,
            software=SoftwareConfig(sync_path=sync_path),
            seed=run_seed,
            check_semantics=False,
        ),
    )
    return out.run.comm_cycles, out.run.sim_events


def _peak_rss_mb() -> float:
    """Peak resident set size of this process and its children, in MiB."""
    ru_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    ru_children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    kb = max(ru_self, ru_children)
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        kb /= 1024.0
    return kb / 1024.0


def run_sweep_variant(
    fast_sync=None, jobs: int = 1, repeat: int = 3, sync_path=None, ns=None, reps=None
) -> dict:
    """Run the whole grid one way; returns the measurement record.

    The path is named by ``sync_path`` ("slow" / "fast" / "epoch");
    ``fast_sync`` is the older boolean spelling kept for the sibling
    benchmarks (bench_obs/bench_check/bench_faults), mapped to
    "fast"/"slow" here rather than through the deprecated config field.

    The grid is repeated ``repeat`` times and the *minimum* wall time is
    reported — the standard estimator for "how fast is the code", since
    scheduler and frequency noise only ever add time.
    """
    if sync_path is None:
        if fast_sync is None:
            raise ValueError("pass sync_path ('slow'/'fast'/'epoch') or fast_sync")
        sync_path = "fast" if fast_sync else "slow"
    machine = MachineConfig()  # p=16, Table 2/3 defaults
    tasks = [
        (machine, n, SWEEP_SEED + 1000 * r + 1, sync_path)
        for n in (SWEEP_NS if ns is None else ns)
        for r in range(SWEEP_REPS if reps is None else reps)
    ]
    wall = float("inf")
    results = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        pass_results = parallel_map(_bench_point, tasks, jobs=jobs)
        wall = min(wall, time.perf_counter() - t0)
        if results is not None and pass_results != results:
            raise AssertionError("non-deterministic sweep results across repeats")
        results = pass_results
    events = int(sum(ev for _comm, ev in results))
    return {
        "wall_seconds": round(wall, 4),
        "sim_events": events,
        "events_per_sec": round(events / wall, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "comm_cycles": [comm for comm, _ev in results],
    }


def run_benchmark(jobs: int, repeat: int = 3, smoke: bool = False) -> dict:
    ns = SMOKE_NS if smoke else None
    reps = SMOKE_REPS if smoke else None
    variants = {
        path: run_sweep_variant(sync_path=path, jobs=jobs, repeat=repeat, ns=ns, reps=reps)
        for path in SYNC_PATHS
    }
    pairs = {
        "fast_vs_slow": variants["fast"]["comm_cycles"] == variants["slow"]["comm_cycles"],
        "epoch_vs_fast": variants["epoch"]["comm_cycles"] == variants["fast"]["comm_cycles"],
    }
    for rec in variants.values():
        del rec["comm_cycles"]  # raw per-point data, not a benchmark metric
    record = {
        "benchmark": "fig2_samplesort_sweep" + ("_smoke" if smoke else ""),
        "machine_p": MachineConfig().p,
        "ns": SMOKE_NS if smoke else SWEEP_NS,
        "reps": SMOKE_REPS if smoke else SWEEP_REPS,
        "seed": SWEEP_SEED,
        "jobs": effective_jobs(jobs),
        "repeat": repeat,
        "host_cpus": os.cpu_count(),
        "sync_paths": list(SYNC_PATHS),
    }
    record.update(variants)
    record.update(
        {
            "speedup": round(
                variants["slow"]["wall_seconds"] / variants["fast"]["wall_seconds"], 3
            ),
            "speedup_epoch_vs_fast": round(
                variants["fast"]["wall_seconds"] / variants["epoch"]["wall_seconds"], 3
            ),
            "event_ratio": round(
                variants["slow"]["sim_events"] / variants["fast"]["sim_events"], 3
            ),
            "event_ratio_epoch": round(
                variants["fast"]["sim_events"] / variants["epoch"]["sim_events"], 3
            ),
            "timings_identical_pairs": pairs,
            "timings_identical": all(pairs.values()),
        }
    )
    return record


def check_regression(record: dict, baseline_path: str, tolerance: float) -> int:
    """Exit status 1 if fastest-path events/sec regressed beyond tolerance.

    The gate runs on the epoch path (the fastest); older baselines
    without an ``epoch`` record fall back to the fast path.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    gate_path = "epoch" if "epoch" in baseline else "fast"
    base_eps = baseline[gate_path]["events_per_sec"]
    new_eps = record[gate_path]["events_per_sec"]
    floor = base_eps * (1.0 - tolerance)
    print(
        f"[check] {gate_path}-path events/sec: baseline={base_eps:,.0f}, "
        f"current={new_eps:,.0f}, floor={floor:,.0f} (tolerance {tolerance:.0%})"
    )
    if new_eps < floor:
        print("[check] FAIL: events/sec regressed beyond tolerance", file=sys.stderr)
        return 1
    if not record["timings_identical"]:
        print(
            "[check] FAIL: sync paths disagreed on simulated timings: "
            f"{record['timings_identical_pairs']}",
            file=sys.stderr,
        )
        return 1
    print("[check] OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="0 = one worker per CPU")
    parser.add_argument("--repeat", type=int, default=3, help="passes per variant (best-of)")
    parser.add_argument("--output", default=None, help="write the JSON record here")
    parser.add_argument("--check", metavar="BASELINE", help="compare against a baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.2, help="allowed events/sec drop")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced grid for CI; fails on any cross-path timing mismatch",
    )
    args = parser.parse_args(argv)

    record = run_benchmark(args.jobs, repeat=1 if args.smoke else args.repeat, smoke=args.smoke)
    print(json.dumps(record, indent=2))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"[wrote {args.output}]")
    if args.smoke and not record["timings_identical"]:
        print(
            f"[smoke] FAIL: sync paths disagreed: {record['timings_identical_pairs']}",
            file=sys.stderr,
        )
        return 1
    if args.check:
        return check_regression(record, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
