"""Figure 7 regeneration: memory-bank microbenchmark on four platforms.

Paper shape: NoConflict ≤ Random ≪ Conflict; NoConflict beats Random by
0–68%; Conflict is a factor of 2–4 worse than NoConflict on the
hardware-shared-memory platforms.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig7_membank import run as run_fig7


def test_fig7_membank(benchmark, fast_mode):
    result = run_once(benchmark, run_fig7, fast=fast_mode)
    print()
    print(result.render())
    for machine, p, nc, rd, cf, rd_nc, cf_nc in result.data["rows"]:
        # When p < banks, Random legitimately edges out NoConflict by a
        # few percent (it spreads over all banks while NoConflict uses
        # only p of them), hence the 10% tolerance.
        assert nc <= rd * 1.10, f"{machine} p={p}: Random beat NoConflict"
        assert rd <= cf * 1.02, f"{machine} p={p}: Conflict beat Random"
        assert rd_nc <= 1.68, f"{machine} p={p}: Random >68% over NoConflict"
    # Hardware shared memory at full machine size: conflict factor 2-4x.
    hw_rows = [
        r for r in result.data["rows"] if r[0] in ("SMP-NATIVE", "Cray-T3E") and r[1] >= 8
    ]
    assert hw_rows
    for machine, p, nc, rd, cf, rd_nc, cf_nc in hw_rows:
        assert 2.0 <= cf_nc <= 4.6, f"{machine} p={p}: conflict factor {cf_nc}"
