"""Figure 6 regeneration: band-entry problem size vs per-message overhead o.

Paper shape: linear growth, as for latency.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig6_overhead_crossover import run as run_fig6


def test_fig6_overhead_crossover(benchmark, fast_mode):
    result = run_once(benchmark, run_fig6, fast=fast_mode)
    print()
    print(result.render())
    ys = result.data["crossover_n"]
    assert ys == sorted(ys)
    assert result.data["slope"] > 0
    assert result.data["r2"] > 0.95
