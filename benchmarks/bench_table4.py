"""Table 4 regeneration: extrapolated n_min/p for six architectures.

Paper shape: the TCP/Ethernet Pentium cluster needs by far the largest
problems; the fast-network MPPs the smallest; ordering and order of
magnitude are the success criterion (absolute values carry the paper's
uncalibrated software factor k).
"""

from benchmarks.conftest import run_once
from repro.experiments.table4_extrapolation import run as run_table4


def test_table4_extrapolation(benchmark, fast_mode):
    result = run_once(benchmark, run_table4, fast=fast_mode)
    print()
    print(result.render())
    ours = {row[0]: row[5] for row in result.data["rows"]}
    # The Ethernet cluster dominates everything, as in the paper.
    assert ours["pentium2-tcp-ethernet"] == max(ours.values())
    assert ours["pentium2-tcp-ethernet"] > 5 * ours["default-simulation"]
    # The fitted relationship is increasing in both l and o.
    model = result.data["model"]
    assert model.slope_l > 0 and model.slope_o > 0
