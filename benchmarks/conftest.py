"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables or figures
(``--benchmark-only`` runs all of them) and prints the rows/series the
paper reports.  Experiments are deterministic simulations, so each runs
once per benchmark round; wall-clock numbers measure the harness, the
scientific output is the printed table.

Use ``FULL=1 pytest benchmarks/ --benchmark-only`` for the
full-fidelity sweeps (10 repetitions, the paper's grids); the default
fast mode preserves every qualitative shape in a fraction of the time.
"""

import os

import pytest

FULL = bool(int(os.environ.get("FULL", "0")))


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return not FULL


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark clock and return it."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
