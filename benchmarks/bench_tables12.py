"""Tables 1 and 2 regeneration: the static configuration tables.

These render from live code (model parameters, node configuration), so
the benchmark asserts the printed values still match the paper's.
"""

from benchmarks.conftest import run_once
from repro.experiments.table1_contract import run as run_table1
from repro.experiments.table2_node import run as run_table2


def test_table1_contract(benchmark):
    result = run_once(benchmark, run_table1)
    print()
    print(result.render())
    assert "max(m_op, g*m_rw, kappa)" in result.text
    assert "randomizing data layout" in result.text


def test_table2_node_parameters(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(result.render())
    for expected in ["4 int / 4 FPU / 2 load-store", "8KB 2-way", "256KB 8-way", "3 + 7 cycles", "400 MHz"]:
        assert expected in result.text
