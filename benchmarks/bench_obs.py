"""Observability overhead benchmark: the disabled path must stay free.

Re-runs the fig2 sample-sort sweep (the same grid as
``bench_perf.py``) with observability *disabled* — the default for all
experiment runs — and compares events/sec against the committed
``benchmarks/BENCH_perf.json`` fast-path baseline, which predates the
instrumentation.  The ``sim.obs is not None`` guards are supposed to
cost one load + branch per site, so the budget is tight: **< 3%** by
default (vs the 20% whole-benchmark gate in ``run_perf.sh``).

It also measures the sweep with collection *enabled* (spans + metrics)
and reports the slowdown ratio — informational, not gated: recording
is allowed to cost whatever the records are worth.

Two layers of defence, because shared machines drift more than 3%:

* a **deterministic** allocation probe — a disabled run must create
  zero ``Span``/``RunCapture``/``Observer`` objects, or some
  instrumentation site lost its ``sim.obs`` guard;
* the **timing** gate vs the committed baseline (``--check``), best-of
  ``--repeat`` passes like ``bench_perf.py``.  On a noisy host, re-run
  or raise ``--repeat`` before trusting a timing failure that the
  allocation probe does not corroborate.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py \
        --check benchmarks/BENCH_perf.json --tolerance 0.03
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_perf import run_sweep_variant  # noqa: E402

from repro import obs  # noqa: E402


def _live_obs_objects() -> int:
    """Number of observability record objects currently alive.

    Deterministic complement to the timing gate: a disabled run must
    allocate *zero* spans/captures/observers, whatever the wall clock
    says (shared machines are easily noisier than the 3% budget).
    """
    import gc

    from repro.obs.spans import Observer, RunCapture, Span

    kinds = (Span, RunCapture, Observer)
    return sum(isinstance(o, kinds) for o in gc.get_objects())


def run_benchmark(jobs: int, repeat: int = 5, enabled_repeat: int = 1) -> dict:
    obs.disable()
    disabled = run_sweep_variant(fast_sync=True, jobs=jobs, repeat=repeat)
    leaked = _live_obs_objects()
    if leaked:
        raise AssertionError(
            f"disabled run allocated {leaked} observability objects; "
            "an instrumentation site is missing its sim.obs guard"
        )

    obs.enable()
    try:
        enabled = run_sweep_variant(fast_sync=True, jobs=jobs, repeat=enabled_repeat)
        n_spans = sum(len(run.spans) for run in obs.runs())
    finally:
        obs.disable()

    if disabled["comm_cycles"] != enabled["comm_cycles"]:
        raise AssertionError("observability changed simulated timings")
    for rec in (disabled, enabled):
        del rec["comm_cycles"]
    return {
        "benchmark": "obs_overhead_fig2_sweep",
        "jobs": jobs,
        "repeat": repeat,
        "host_cpus": os.cpu_count(),
        "disabled": disabled,
        "enabled": enabled,
        "enabled_slowdown": round(
            enabled["wall_seconds"] / disabled["wall_seconds"], 3
        ),
        "spans_recorded_last_pass": n_spans,
    }


def check_overhead(record: dict, baseline_path: str, tolerance: float) -> int:
    """Exit 1 if the *disabled* path regressed beyond tolerance vs the
    pre-instrumentation baseline's fast-path events/sec."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_eps = baseline["fast"]["events_per_sec"]
    new_eps = record["disabled"]["events_per_sec"]
    floor = base_eps * (1.0 - tolerance)
    overhead = 1.0 - new_eps / base_eps
    print(
        f"[check] disabled-path events/sec: baseline={base_eps:,.0f}, "
        f"current={new_eps:,.0f} (overhead {overhead:+.1%}), "
        f"floor={floor:,.0f} (tolerance {tolerance:.0%})"
    )
    if new_eps < floor:
        print(
            "[check] FAIL: disabled-observability overhead exceeds tolerance",
            file=sys.stderr,
        )
        return 1
    print(
        f"[check] OK (enabled-collection slowdown: "
        f"{record['enabled_slowdown']}x, informational)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="0 = one worker per CPU")
    parser.add_argument(
        "--repeat", type=int, default=5,
        help="disabled passes (best-of; matches the baseline's methodology)",
    )
    parser.add_argument("--output", default=None, help="write the JSON record here")
    parser.add_argument("--check", metavar="BASELINE", help="gate against BENCH_perf.json")
    parser.add_argument("--tolerance", type=float, default=0.03, help="allowed drop")
    args = parser.parse_args(argv)

    record = run_benchmark(args.jobs, repeat=args.repeat)
    print(json.dumps(record, indent=2))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"[wrote {args.output}]")
    if args.check:
        return check_overhead(record, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
