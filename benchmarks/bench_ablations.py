"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate three mechanisms the paper's
library *asserts* matter (§2, §3.1.2) and show each one's effect inside
the reproduction:

1. **exchange schedule** — the contention-avoiding staggered rounds vs
   a naive fixed destination order ("nodes exchange data in an order
   designed to reduce contention");
2. **layout randomization** — serving a read-hot shared region laid out
   BLOCKED (one owning node) vs HASHED (QSM's randomised default):
   the node-level analogue of §4's bank-conflict argument;
3. **transport chunking** — splitting bulk messages so send/receive NIC
   passes pipeline, vs one monolithic message per pair;
4. **congestion avoidance** — on a network with *finite receive
   buffers* (the Brewer–Kuszmaul receiver-overrun regime QSM delegates
   to the runtime), the staggered schedule generates no overruns at
   all, while the naive order triggers a retry storm.
"""

import dataclasses

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.machine.config import MachineConfig
from repro.qsmlib import Layout, QSMMachine, RunConfig, SoftwareConfig
from repro.util.tables import format_table


def _all_to_all_program(words):
    def program(ctx, A):
        p, pid = ctx.p, ctx.pid
        payload = np.arange(words, dtype=np.int64)
        for d in range(p):
            if d != pid:
                ctx.put_range(A, A.local_offset(d) + pid * words, payload)
        yield ctx.sync()

    return program


def _run_all_to_all(words=256, p=16, machine=None, **sw_overrides):
    sw = dataclasses.replace(SoftwareConfig(), **sw_overrides)
    cfg = RunConfig(
        machine=machine or MachineConfig(p=p), software=sw, check_semantics=False
    )
    qm = QSMMachine(cfg)
    A = qm.allocate("a", qm.p * qm.p * words)
    comm = qm.run(_all_to_all_program(words), A=A).comm_cycles
    return comm, qm.machine.network.retries


def test_ablation_exchange_schedule(benchmark):
    def study():
        return {
            "staggered": _run_all_to_all(exchange_schedule="staggered")[0],
            "fixed": _run_all_to_all(exchange_schedule="fixed")[0],
        }

    res = run_once(benchmark, study)
    slowdown = res["fixed"] / res["staggered"]
    print()
    print(
        format_table(
            ["schedule", "all-to-all comm (cycles)", "vs staggered"],
            [
                ["staggered (library)", round(res["staggered"]), "1.00"],
                ["fixed (naive ablation)", round(res["fixed"]), f"{slowdown:.2f}"],
            ],
            title="Ablation 1: contention-avoiding exchange order",
        )
    )
    assert slowdown > 1.10  # the staggered schedule demonstrably matters


def _hot_region_program(reads_per_proc):
    def program(ctx, H):
        idx = ctx.rng.integers(0, H.n, size=reads_per_proc)
        ctx.get(H, idx)
        yield ctx.sync()

    return program


def _run_hot_region(layout, reads=512, p=16, region=16 * 1024):
    cfg = RunConfig(machine=MachineConfig(p=p), seed=3, check_semantics=False)
    qm = QSMMachine(cfg)
    # BLOCKED with n <= block puts the whole region on node 0; HASHED
    # spreads cache-line blocks across all nodes.
    H = qm.allocate("hot", region, layout=layout)
    return qm.run(_hot_region_program(reads), H=H).comm_cycles


def test_ablation_layout_randomization(benchmark):
    def study():
        return {
            "root": _run_hot_region(Layout.ROOT),
            "hashed": _run_hot_region(Layout.HASHED),
            "cyclic": _run_hot_region(Layout.CYCLIC),
        }

    res = run_once(benchmark, study)
    print()
    print(
        format_table(
            ["layout of hot region", "comm (cycles)", "vs hashed"],
            [
                ["single owner (hot spot)", round(res["root"]), f"{res['root'] / res['hashed']:.2f}"],
                ["hashed (QSM default)", round(res["hashed"]), "1.00"],
                ["cyclic (hand layout)", round(res["cyclic"]), f"{res['cyclic'] / res['hashed']:.2f}"],
            ],
            title="Ablation 2: randomized layout vs a hot single owner",
        )
    )
    # Hashing buys most of the hand layout's benefit and avoids the
    # single-owner serialisation — the node-level §4 story.
    assert res["root"] > 3 * res["hashed"]
    assert res["cyclic"] == pytest.approx(res["hashed"], rel=0.25)


def test_ablation_transport_chunking(benchmark):
    def study():
        out = {}
        for label, chunk in [("16KB (default)", 16384), ("1MB (monolithic)", 2**20), ("512B (tiny)", 512)]:
            out[label] = _run_all_to_all(words=2048, p=4, max_message_bytes=chunk)[0]
        return out

    res = run_once(benchmark, study)
    base = res["16KB (default)"]
    print()
    print(
        format_table(
            ["chunk size", "all-to-all comm (cycles)", "vs default"],
            [[k, round(v), f"{v / base:.2f}"] for k, v in res.items()],
            title="Ablation 3: transport chunk size (pipelining vs per-chunk overhead)",
        )
    )
    # Monolithic messages lose send/recv pipelining; tiny chunks pay o
    # per chunk.  The default sits at/near the sweet spot.
    assert res["1MB (monolithic)"] > base
    assert res["512B (tiny)"] > base


def test_ablation_congestion_avoidance(benchmark):
    from repro.machine.config import NetworkConfig

    def study():
        finite = MachineConfig(
            p=16, network=NetworkConfig(recv_buffer_slots=3)
        )
        out = {}
        out["infinite buffers, staggered"] = _run_all_to_all(
            words=512, machine=MachineConfig(p=16), max_message_bytes=4096
        )
        out["finite buffers, staggered"] = _run_all_to_all(
            words=512, machine=finite, max_message_bytes=4096
        )
        out["finite buffers, fixed order"] = _run_all_to_all(
            words=512, machine=finite, max_message_bytes=4096, exchange_schedule="fixed"
        )
        return out

    res = run_once(benchmark, study)
    base = res["finite buffers, staggered"][0]
    print()
    print(
        format_table(
            ["configuration", "comm (cycles)", "overrun retries", "vs staggered"],
            [[k, round(c), r, f"{c / base:.2f}"] for k, (c, r) in res.items()],
            title="Ablation 4: bulk-synchronous schedule as congestion control (§2)",
        )
    )
    # The staggered schedule avoids receiver overrun entirely: finite
    # buffers cost it nothing.  The naive order triggers a retry storm.
    assert res["finite buffers, staggered"][1] == 0
    assert res["finite buffers, staggered"][0] == res["infinite buffers, staggered"][0]
    assert res["finite buffers, fixed order"][1] > 100
    assert res["finite buffers, fixed order"][0] > 1.2 * base
