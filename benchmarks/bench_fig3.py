"""Figure 3 regeneration: list ranking, five prediction/measurement lines.

Paper shape: prediction accuracy improves with n; BSP within 15% for
n ≥ 40,000 and QSM within 15% for n ≥ 60,000; Best-case / WHP bracket.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3_listrank import run as run_fig3


def test_fig3_list_ranking(benchmark, fast_mode):
    result = run_once(benchmark, run_fig3, fast=fast_mode)
    print()
    print(result.render())
    ns = result.data["x"]
    meas = result.data["comm_measured"]
    qsm, bsp = result.data["qsm-observed"], result.data["bsp-observed"]
    best, whp = result.data["qsm-best"], result.data["qsm-whp"]
    for i, n in enumerate(ns):
        assert best[i] <= meas[i] * 1.02
        assert meas[i] <= whp[i] * 1.05
        assert abs(bsp[i] - meas[i]) <= abs(qsm[i] - meas[i])
        if n >= 60000:
            assert abs(qsm[i] - meas[i]) / meas[i] <= 0.15
        if n >= 40000:
            assert abs(bsp[i] - meas[i]) / meas[i] <= 0.15
    errs = [abs(q - m) / m for q, m in zip(qsm, meas)]
    assert errs[-1] < errs[0]  # accuracy improves with n
