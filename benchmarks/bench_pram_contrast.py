"""Extension benchmark: PRAM-style vs QSM-style phase structure (§2.1).

Not a paper figure — it quantifies the §2.1 argument that PRAM's
step-synchronous style costs real machines extra phases: the same
prefix-sums problem solved with the one-phase QSM broadcast and with a
Hillis–Steele scan (1 + log2 p phases), on the same simulated machine.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.algorithms import run_prefix_sums, run_prefix_sums_pram
from repro.qsmlib import QSMMachine, RunConfig
from repro.util.tables import format_table


def test_pram_vs_qsm_phase_structure(benchmark):
    def study():
        values = np.arange(1 << 18)
        qsm = run_prefix_sums(values, RunConfig(seed=1, check_semantics=False))
        pram = run_prefix_sums_pram(values, RunConfig(seed=1, check_semantics=False))
        assert np.array_equal(qsm.result, pram.result)
        return qsm.run, pram.run

    qsm_run, pram_run = run_once(benchmark, study)
    floor = QSMMachine(RunConfig()).cost_model().sync_floor_cycles(16)
    print()
    print(
        format_table(
            ["formulation", "phases", "comm (cycles)", "total (cycles)"],
            [
                ["QSM (broadcast once)", qsm_run.n_phases, round(qsm_run.comm_cycles), round(qsm_run.total_cycles)],
                ["PRAM-style (Hillis-Steele)", pram_run.n_phases, round(pram_run.comm_cycles), round(pram_run.total_cycles)],
            ],
            title="Prefix sums, n=2^18, p=16: phase structure is the cost",
        )
    )
    print(f"empty-sync floor on this machine: {floor:,.0f} cycles/phase")
    assert pram_run.comm_cycles > 3 * qsm_run.comm_cycles
    assert pram_run.n_phases == 5 and qsm_run.n_phases == 1
