#!/bin/sh
# Performance regression gate: re-run the fig2 sample-sort sweep
# benchmark on all three sync paths and fail if the fastest (epoch)
# path's events/sec has dropped more than 20% below the committed
# baseline (benchmarks/BENCH_perf.json), or if any two paths disagree
# on simulated timings.
#
# Usage: benchmarks/run_perf.sh [extra bench_perf.py args]
# (invoked by `make bench`)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

out=$(mktemp "${TMPDIR:-/tmp}/bench_perf.XXXXXX.json")
trap 'rm -f "$out"' EXIT

PYTHONPATH=src python benchmarks/bench_perf.py \
    --output "$out" \
    --check benchmarks/BENCH_perf.json \
    --tolerance 0.2 \
    "$@"
