"""Topology smoke benchmark: flat bit-identity and a small cluster grid.

Two gates, both cheap enough for CI:

* **Flat == legacy.**  The default ``MachineConfig()`` (a flat
  topology) must reproduce the pre-topology golden timings of the
  pinned samplesort point under every sync path — the topology layer
  may not move the flat machine by a single ULP.
* **Cluster is path-independent.**  A small cores x ratio grid of
  cluster machines must report bit-identical ``comm_cycles`` under the
  fast DES path and the vectorized epoch kernel (the slow oracle is
  covered per-point by the test suite; here one representative point
  keeps the smoke fast).

Usage::

    PYTHONPATH=src python benchmarks/bench_topology.py        # make bench-topology
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.algorithms.samplesort import run_sample_sort
from repro.machine.config import ClusterTopology, MachineConfig
from repro.qsmlib.config import SoftwareConfig
from repro.qsmlib.program import RunConfig

#: Pre-topology goldens: samplesort p=16 n=8192, rng(42), seed=1 on the
#: flat default machine (same pins as tests/test_topology.py).
GOLDEN_N = 8192
GOLDEN_COMM = 1725971.033437996
GOLDEN_TOTAL = 1752097.8520399856

SMOKE_CORES = [2, 4]
SMOKE_RATIOS = [2.0, 8.0]


def _run(machine: MachineConfig, path: str) -> tuple:
    rng = np.random.default_rng(42)
    out = run_sample_sort(
        rng.integers(0, 2**62, size=GOLDEN_N),
        RunConfig(
            machine=machine,
            software=SoftwareConfig(sync_path=path),
            seed=1,
            check_semantics=False,
        ),
    )
    return out.run.comm_cycles, out.run.total_cycles


def main() -> int:
    t0 = time.perf_counter()
    failures = []

    flat = MachineConfig()
    for path in ("slow", "fast", "epoch"):
        comm, total = _run(flat, path)
        ok = comm == GOLDEN_COMM and total == GOLDEN_TOTAL
        print(f"flat    {path:5s}  comm={comm:.6f}  total={total:.6f}  "
              f"{'OK' if ok else 'MISMATCH'}")
        if not ok:
            failures.append(f"flat/{path} drifted from the pre-topology golden")

    net = flat.network
    for cores in SMOKE_CORES:
        for ratio in SMOKE_RATIOS:
            topo = ClusterTopology(
                cores_per_node=cores,
                intra_gap_cycles_per_byte=net.gap_cycles_per_byte / ratio,
                intra_overhead_cycles=net.overhead_cycles / ratio,
                intra_latency_cycles=0.0,
            )
            machine = MachineConfig(topology=topo)
            fast = _run(machine, "fast")
            epoch = _run(machine, "epoch")
            ok = fast == epoch
            print(f"cluster cores={cores} ratio={ratio:g}  "
                  f"comm={fast[0]:.6f}  {'OK' if ok else 'MISMATCH'}")
            if not ok:
                failures.append(
                    f"cluster cores={cores} ratio={ratio:g}: fast={fast} epoch={epoch}"
                )

    print(f"[bench-topology completed in {time.perf_counter() - t0:.1f}s]")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
