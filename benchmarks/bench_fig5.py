"""Figure 5 regeneration: band-entry problem size vs latency l.

Paper shape: the required problem size grows linearly with l.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig5_latency_crossover import run as run_fig5


def test_fig5_latency_crossover(benchmark, fast_mode):
    result = run_once(benchmark, run_fig5, fast=fast_mode)
    print()
    print(result.render())
    ys = result.data["crossover_n"]
    assert ys == sorted(ys)  # monotone in l
    assert result.data["slope"] > 0
    assert result.data["r2"] > 0.95  # the paper's linear relationship
