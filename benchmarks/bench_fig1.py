"""Figure 1 regeneration: prefix sums, measured vs QSM/BSP predictions.

Paper shape: both predictions constant in n and below the measured
communication time (overhead/latency dominate tiny messages); QSM below
BSP; absolute error small next to total running time at large n.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig1_prefix import run as run_fig1


def test_fig1_prefix_sums(benchmark, fast_mode):
    result = run_once(benchmark, run_fig1, fast=fast_mode)
    print()
    print(result.render())
    qsm, bsp = result.data["qsm-best"], result.data["bsp-best"]
    meas, total = result.data["comm_measured"], result.data["total_measured"]
    assert len(set(qsm)) == 1 and len(set(bsp)) == 1  # n-independent predictions
    assert all(q < b < m for q, b, m in zip(qsm, bsp, meas))
    # absolute comm-prediction error is small next to total time at the top n
    assert (meas[-1] - qsm[-1]) / total[-1] < 0.5
