"""Fault-injection overhead benchmark: the disabled path must stay free.

Re-runs the fig2 sample-sort sweep (the same grid as ``bench_perf.py``)
with :mod:`repro.faults` *disarmed* — the default for all experiment
runs — and compares events/sec against the committed
``benchmarks/BENCH_perf.json`` fast-path baseline.  The integration
sites (network wire, sync engine, membank driver) all guard on
``faults is None`` / ``machine.faults is None``, one load + branch per
site, so the budget matches ``bench_obs.py``/``bench_check.py``:
**< 3%** by default.

It also measures the sweep with a drop+jitter plan *armed* and reports
the slowdown ratio — informational, not gated: retransmits and jitter
are supposed to cost simulated (and therefore wall) time.  Unlike the
sanitizer, arming faults **must change** simulated timings (that is
the product), and the change must be **deterministic**: two armed
passes over the same grid must agree exactly, which
``run_sweep_variant``'s repeat-equality assertion enforces.

Deterministic complement to the timing gate: a disarmed run must
allocate zero :class:`~repro.faults.state.FaultState` objects — if one
shows up, an integration site lost its ``None`` guard.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py
    PYTHONPATH=src python benchmarks/bench_faults.py \
        --check benchmarks/BENCH_perf.json --tolerance 0.03
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_perf import run_sweep_variant  # noqa: E402

from repro import faults  # noqa: E402

#: The armed pass's plan: enough perturbation to exercise the
#: retransmit and jitter paths without exploding the run time.
ARMED_SPEC = "drop=0.03,jitter=200,seed=7"


def _live_fault_states() -> int:
    """Number of FaultState objects currently alive (must be 0 disarmed)."""
    import gc

    from repro.faults.state import FaultState

    return sum(isinstance(o, FaultState) for o in gc.get_objects())


def run_benchmark(jobs: int, repeat: int = 5, armed_repeat: int = 1) -> dict:
    faults.disarm()
    disabled = run_sweep_variant(fast_sync=True, jobs=jobs, repeat=repeat)
    leaked = _live_fault_states()
    if leaked:
        raise AssertionError(
            f"disarmed run allocated {leaked} FaultState objects; "
            "an integration site is missing its `is None` guard"
        )

    faults.arm(ARMED_SPEC)
    try:
        # repeat>=2 exercises run_sweep_variant's determinism assertion
        # on the armed path: identical fault schedules across passes.
        armed = run_sweep_variant(
            fast_sync=True, jobs=jobs, repeat=max(2, armed_repeat)
        )
        tally = faults.drain_tally()
    finally:
        faults.disarm()

    if disabled["comm_cycles"] == armed["comm_cycles"]:
        raise AssertionError(
            "arming fault injection did not change simulated timings; "
            "the plan is not reaching the machine"
        )
    if not tally.get("fault.drops"):
        raise AssertionError(f"armed sweep recorded no drops (tally: {tally})")
    for rec in (disabled, armed):
        del rec["comm_cycles"]
    return {
        "benchmark": "faults_overhead_fig2_sweep",
        "jobs": jobs,
        "repeat": repeat,
        "host_cpus": os.cpu_count(),
        "armed_spec": ARMED_SPEC,
        "disabled": disabled,
        "armed": armed,
        "armed_slowdown": round(armed["wall_seconds"] / disabled["wall_seconds"], 3),
        "armed_tally": {k: v for k, v in sorted(tally.items())},
    }


def check_overhead(record: dict, baseline_path: str, tolerance: float) -> int:
    """Exit 1 if the *disabled* path regressed beyond tolerance vs the
    pre-fault-injection baseline's fast-path events/sec."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_eps = baseline["fast"]["events_per_sec"]
    new_eps = record["disabled"]["events_per_sec"]
    floor = base_eps * (1.0 - tolerance)
    overhead = 1.0 - new_eps / base_eps
    print(
        f"[faults] disabled-path events/sec: baseline={base_eps:,.0f}, "
        f"current={new_eps:,.0f} (overhead {overhead:+.1%}), "
        f"floor={floor:,.0f} (tolerance {tolerance:.0%})"
    )
    if new_eps < floor:
        print(
            "[faults] FAIL: disabled-fault-injection overhead exceeds tolerance",
            file=sys.stderr,
        )
        return 1
    print(
        f"[faults] OK (armed slowdown: {record['armed_slowdown']}x with "
        f"{ARMED_SPEC!r}, informational)"
    )
    return 0


def _merge_best(best: dict, new: dict) -> dict:
    """Keep the faster (min-wall) disabled/armed measurements across rounds."""
    if best is None:
        return new
    for key in ("disabled", "armed"):
        if new[key]["wall_seconds"] < best[key]["wall_seconds"]:
            best[key] = new[key]
    best["armed_slowdown"] = round(
        best["armed"]["wall_seconds"] / best["disabled"]["wall_seconds"], 3
    )
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="0 = one worker per CPU")
    parser.add_argument(
        "--repeat", type=int, default=5,
        help="disabled passes (best-of; matches the baseline's methodology)",
    )
    parser.add_argument("--output", default=None, help="write the JSON record here")
    parser.add_argument("--check", metavar="BASELINE", help="gate against BENCH_perf.json")
    parser.add_argument("--tolerance", type=float, default=0.03, help="allowed drop")
    parser.add_argument(
        "--retries", type=int, default=3,
        help="measurement rounds for the --check gate; any clean round passes",
    )
    args = parser.parse_args(argv)

    rounds = max(1, args.retries) if args.check else 1
    record = None
    status = 0
    for attempt in range(rounds):
        record = _merge_best(record, run_benchmark(args.jobs, repeat=args.repeat))
        if not args.check:
            break
        status = check_overhead(record, args.check, args.tolerance)
        if status == 0:
            break
        if attempt < rounds - 1:
            print(f"[faults] retrying (round {attempt + 2}/{rounds})...")
    print(json.dumps(record, indent=2))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"[wrote {args.output}]")
    return status


if __name__ == "__main__":
    sys.exit(main())
