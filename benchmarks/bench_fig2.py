"""Figure 2 regeneration: sample sort, five prediction/measurement lines.

Paper shape: Best-case and WHP bound bracket the measurement; the QSM
estimate under-predicts but converges — within 10% of measured
communication by n ≈ 125,000; the BSP estimate is closer throughout.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig2_samplesort import run as run_fig2


def test_fig2_sample_sort(benchmark, fast_mode):
    result = run_once(benchmark, run_fig2, fast=fast_mode)
    print()
    print(result.render())
    meas = result.data["comm_measured"]
    best, whp = result.data["qsm-best"], result.data["qsm-whp"]
    qsm, bsp = result.data["qsm-observed"], result.data["bsp-observed"]
    for i, n in enumerate(result.data["x"]):
        assert best[i] <= meas[i] <= whp[i], f"band violated at n={n}"
        assert qsm[i] < meas[i], f"QSM should under-predict at n={n}"
        assert abs(bsp[i] - meas[i]) <= abs(qsm[i] - meas[i]), f"BSP not closer at n={n}"
    big = [i for i, n in enumerate(result.data["x"]) if n >= 125000]
    for i in big:
        assert abs(qsm[i] - meas[i]) / meas[i] <= 0.10
