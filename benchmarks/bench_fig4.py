"""Figure 4 regeneration: sample-sort comm vs QSM predictions as l varies.

Paper shape: QSM's prediction band is constant in l; larger l lifts the
measured curves by a per-phase constant that loses relative weight as n
grows.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4_latency_sweep import run as run_fig4


def test_fig4_latency_sweep(benchmark, fast_mode):
    result = run_once(benchmark, run_fig4, fast=fast_mode)
    print()
    print(result.render())
    measured_keys = sorted(
        (k for k in result.data if k.startswith("measured_l=")),
        key=lambda k: int(k.split("=")[1]),
    )
    curves = [result.data[k] for k in measured_keys]
    # Monotone in l at every n.
    for i in range(len(result.data["x"])):
        column = [c[i] for c in curves]
        assert column == sorted(column)
    # The latency penalty shrinks relatively as n grows.
    low, high = curves[0], curves[-1]
    rel_gap_small = (high[0] - low[0]) / low[0]
    rel_gap_big = (high[-1] - low[-1]) / low[-1]
    assert rel_gap_big < rel_gap_small
