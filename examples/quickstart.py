#!/usr/bin/env python
"""Quickstart: write and run your first QSM program.

A QSM program is a Python generator executed SPMD by every simulated
processor.  Within a phase it computes on node-local views and enqueues
``get``/``put`` requests; ``yield ctx.sync()`` ends the phase — that is
when communication happens, priced by the simulated machine
(Table 2/3 of the paper by default).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.qsmlib import QSMMachine, RunConfig


def neighbour_rotate(ctx, A, B):
    """Each processor sends its block's total to the next processor and
    then scales its block by the received total — two phases."""
    p, pid = ctx.p, ctx.pid

    # -- phase 1: local reduce + one remote word ------------------------
    local = ctx.local(A)
    total = int(local.sum())
    ctx.charge_cycles(len(local), ops=len(local))  # cost of the reduction
    ctx.put(B, [(pid + 1) % p], [total])  # B[i] = total of processor i-1
    yield ctx.sync()

    # -- phase 2: use the received value locally ------------------------
    received = int(B.data[pid])  # B is blocked: word pid is node-local
    ctx.local(A)[:] = local + received
    ctx.charge_cycles(len(local), ops=len(local))
    return received


def main() -> None:
    config = RunConfig(seed=42)  # 16 processors, paper-default network
    qm = QSMMachine(config)

    n = 1 << 16
    A = qm.allocate("A", n)
    A.data[:] = np.arange(n) % 7
    B = qm.allocate("B", qm.p)

    result = qm.run(neighbour_rotate, A=A, B=B)

    print("== quickstart: neighbour-rotate on a simulated 16-node QSM ==")
    print(f"synchronizations     : {result.n_phases}")
    print(f"total running time   : {result.total_cycles:,.0f} cycles "
          f"({qm.machine.cycles_to_us(result.total_cycles):.1f} us at 400 MHz)")
    print(f"communication time   : {result.comm_cycles:,.0f} cycles")
    print(f"computation time     : {result.compute_cycles:,.0f} cycles")
    ph = result.phases[0]
    print(f"phase 0 remote words : put={ph.max_put_words} get={ph.max_get_words} per processor")

    costs = qm.cost_model()
    print("\n== the machine's effective communication costs (Table 3) ==")
    print(f"put  : {costs.put_cycles_per_byte:6.1f} cycles/byte (paper observed: 35)")
    print(f"get  : {costs.get_cycles_per_byte:6.1f} cycles/byte (paper observed: 287)")
    print(f"barrier (p=16): {costs.barrier_cycles(16):,.0f} cycles (paper observed: 25,500)")

    assert all(r == result.returns[0] or True for r in result.returns)
    print("\nreturned totals per processor:", result.returns[:4], "...")


if __name__ == "__main__":
    main()
