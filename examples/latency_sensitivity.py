#!/usr/bin/env python
"""Latency/overhead sensitivity: when can a model ignore l and o?

The §3.3 question in miniature: sweep the hardware latency and the
per-message overhead on the simulated machine and watch how much of the
measured sample-sort communication the latency-free, overhead-free QSM
analysis explains at each problem size.

Run:  python examples/latency_sensitivity.py
"""

import numpy as np

from repro.algorithms import run_sample_sort
from repro.machine.config import MachineConfig
from repro.predict import make_source, predict_value
from repro.qsmlib import QSMMachine, RunConfig
from repro.util.tables import format_series


def coverage(machine: MachineConfig, n: int, seed: int = 3) -> float:
    """Fraction of measured communication the QSM estimate explains."""
    config = RunConfig(machine=machine, seed=seed, check_semantics=False)
    qm = QSMMachine(config)
    source = make_source("samplesort", p=machine.p, cpu=qm.machine.cpus[0])
    rng = np.random.default_rng(seed)
    out = run_sample_sort(rng.integers(0, 2**62, size=n), config)
    return predict_value(source, "qsm-observed", qm.cost_model(), run=out.run) / out.run.comm_cycles


def main() -> None:
    base = MachineConfig()
    ns = [4096, 32768, 250000]

    print("How much of measured communication does QSM explain? (1.00 = all)\n")

    series = {}
    for l in [400.0, 6400.0, 102400.0]:
        machine = base.with_network(latency_cycles=l)
        series[f"l={int(l)}"] = [round(coverage(machine, n), 2) for n in ns]
    print(format_series("n", ns, series, title="Sweep: hardware latency l (o fixed at 400)"))
    print()

    series = {}
    for o in [100.0, 1600.0, 25600.0]:
        machine = base.with_network(overhead_cycles=o)
        series[f"o={int(o)}"] = [round(coverage(machine, n), 2) for n in ns]
    print(format_series("n", ns, series, title="Sweep: per-message overhead o (l fixed at 1600)"))

    print("\nReading: every column tends to 1.0 as n grows — QSM's decision")
    print("to omit l and o costs accuracy only below a machine-dependent")
    print("minimum problem size, which grows linearly in l and in o")
    print("(paper Figures 4-6; run `qsm-repro run fig5` for the full sweep).")


if __name__ == "__main__":
    main()
