#!/usr/bin/env python
"""Sorting study: sample sort across problem sizes, with predictions.

Reproduces the Figure 2 methodology on a small grid: run the QSM sample
sort, verify the output against the sequential baseline, and compare
measured communication against the QSM/BSP prediction lines.  Also
demonstrates the cost-model speedup over a single node.

Run:  python examples/sorting_study.py
"""

import numpy as np

from repro.algorithms import run_sample_sort, sequential_sort
from repro.algorithms.common import profile_sort
from repro.predict import make_source, predict_value
from repro.qsmlib import QSMMachine, RunConfig
from repro.util.tables import format_series


def main() -> None:
    config = RunConfig(seed=7, check_semantics=False)
    qm = QSMMachine(config)
    costs = qm.cost_model()
    source = make_source("samplesort", p=qm.p, cpu=qm.machine.cpus[0])
    rng = np.random.default_rng(7)

    ns = [8192, 65536, 500000]
    rows = {"measured_comm": [], "qsm_estimate": [], "bsp_estimate": [],
            "error_pct": [], "speedup_vs_1node": []}

    for n in ns:
        values = rng.integers(0, 2**62, size=n)
        out = run_sample_sort(values, RunConfig(seed=7, check_semantics=False))
        assert np.array_equal(out.result, sequential_sort(values)), "sort is wrong!"

        meas = out.run.comm_cycles
        qsm = predict_value(source, "qsm-observed", costs, run=out.run)
        bsp = predict_value(source, "bsp-observed", costs, run=out.run)
        seq_cycles = qm.machine.cpus[0].cycles(profile_sort(n))
        rows["measured_comm"].append(round(meas))
        rows["qsm_estimate"].append(round(qsm))
        rows["bsp_estimate"].append(round(bsp))
        rows["error_pct"].append(round(100 * abs(qsm - meas) / meas, 1))
        rows["speedup_vs_1node"].append(round(seq_cycles / out.run.total_cycles, 2))

    print(format_series("n", ns, rows,
                        title="Sample sort on the default 16-node QSM machine (cycles)"))
    print("\nNote how the QSM prediction error shrinks as n grows — the")
    print("per-message overheads and latency it ignores stop mattering")
    print("once there is enough data to batch and pipeline (paper §3.2).")


if __name__ == "__main__":
    main()
