#!/usr/bin/env python
"""Memory-bank contention study: is randomising the layout good enough?

The §4 experiment: stress the memory system of four platform models
with three access patterns and compare.  QSM's contract says the
runtime may hash data across banks instead of the programmer hand-
placing it; the study quantifies what that costs (Random vs NoConflict)
and what it saves (Random vs Conflict).

Run:  python examples/membank_study.py
"""

from repro.membank import CONFLICT, MEMBANK_MACHINES, NOCONFLICT, RANDOM
from repro.membank.microbench import pattern_sweep
from repro.util.tables import format_table


def main() -> None:
    rows = []
    for name, factory in MEMBANK_MACHINES.items():
        cfg = factory()
        res = pattern_sweep(cfg, [NOCONFLICT, RANDOM, CONFLICT], accesses_per_proc=1500)
        nc = res["NoConflict"].mean_access_us
        rd = res["Random"].mean_access_us
        cf = res["Conflict"].mean_access_us
        rows.append([
            name,
            cfg.p,
            round(nc, 3),
            round(rd, 3),
            round(cf, 3),
            f"{100 * (rd / nc - 1):.0f}%",
            f"{cf / nc:.1f}x",
        ])

    print(format_table(
        ["machine", "p", "NoConflict us", "Random us", "Conflict us",
         "hand-layout speedup", "hot-spot penalty"],
        rows,
        title="Remote access time under three layouts (paper Figure 7)",
    ))
    print("\nReading: the QSM-style Random layout gives up at most tens of")
    print("percent against a perfect hand layout, but avoids the 2-4x")
    print("hot-spot collapse — and on software shared-memory layers the")
    print("per-access overhead hides bank contention almost entirely.")


if __name__ == "__main__":
    main()
