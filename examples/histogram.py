#!/usr/bin/env python
"""Parallel histogram: a small application built from library patterns.

Counts value frequencies of a large distributed array into k buckets,
using the reusable pieces of :mod:`repro.qsmlib.collective_patterns`:

1. each processor histograms its local block (pure local work),
2. partial counts are combined by writing them into per-destination
   slots (each processor owns k/p buckets of the global histogram),
3. an :class:`AllShareBoard` carries each processor's total so everyone
   can verify conservation without extra communication.

Also demonstrates reading the measured phase log afterwards: how many
remote words the combine step cost, and what the QSM model predicts.

Run:  python examples/histogram.py
"""

import numpy as np

from repro.core.estimators import qsm_comm_estimate
from repro.qsmlib import AllShareBoard, QSMMachine, RunConfig


K_BUCKETS = 64  # must be a multiple of p


def histogram_program(ctx, data, hist):
    p, pid = ctx.p, ctx.pid
    per_proc = K_BUCKETS // p

    # -- phase 0: register the totals board -----------------------------
    board = AllShareBoard.alloc(ctx, "hist.totals")
    yield ctx.sync()

    # -- phase 1: local histogram; send each owner its slice ------------
    local = ctx.local(data)
    counts = np.bincount(local % K_BUCKETS, minlength=K_BUCKETS)
    ctx.charge_cycles(len(local) * 2, ops=len(local) * 2)
    # Accumulation via staging: each destination owns a p×per_proc
    # region of `hist` (one stripe per source) so concurrent partial
    # counts never write the same word — queue-model friendly.
    for d in range(p):
        sl = counts[d * per_proc : (d + 1) * per_proc]
        base = d * (p * per_proc) + pid * per_proc
        if d == pid:
            ctx.local(hist)[pid * per_proc : (pid + 1) * per_proc] = sl
        else:
            ctx.put_range(hist, base, sl)
    board.post(ctx, int(counts.sum()))
    yield ctx.sync()

    # -- phase 2: owners reduce their stripes ---------------------------
    mine = ctx.local(hist).reshape(p, per_proc)
    reduced = mine.sum(axis=0)
    ctx.charge_cycles(mine.size, ops=mine.size)
    grand_total = board.total(ctx)
    return reduced.tolist(), grand_total


def main() -> None:
    config = RunConfig(seed=11, check_semantics=False)
    qm = QSMMachine(config)
    p = qm.p
    n = 1 << 18

    rng = np.random.default_rng(11)
    values = rng.integers(0, 2**40, size=n)

    data = qm.allocate("hist.data", n)
    data.data[:] = values
    # Staging area: for each owner, one stripe of partial counts per source.
    hist = qm.allocate("hist.acc", p * K_BUCKETS)

    run = qm.run(histogram_program, data=data, hist=hist)

    buckets = np.concatenate([np.asarray(r[0]) for r in run.returns])
    expected = np.bincount(values % K_BUCKETS, minlength=K_BUCKETS)
    assert np.array_equal(buckets, expected), "histogram is wrong!"
    assert run.returns[0][1] == n  # conservation via the board

    print(f"== parallel histogram of {n:,} values into {K_BUCKETS} buckets (p={p}) ==")
    print(f"verified against numpy: OK   (total counted: {run.returns[0][1]:,})")
    print(f"phases: {run.n_phases}   total: {run.total_cycles:,.0f} cycles   "
          f"comm: {run.comm_cycles:,.0f} cycles")
    combine = run.phases[1]
    print(f"combine step: {combine.max_put_words} remote words per processor "
          f"(k − k/p histogram slots + the shared total)")
    est = qsm_comm_estimate(run, qm.cost_model())
    print(f"QSM communication estimate: {est:,.0f} cycles "
          f"({est / run.comm_cycles:.0%} of measured — the rest is the "
          f"per-phase sync floor)")


if __name__ == "__main__":
    main()
