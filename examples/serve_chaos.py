"""Chaos smoke for the hardened sweep service (docs/SERVICE.md).

The crash-safety acceptance test, end to end against real processes:

1. start the service, submit a fig1 sweep, and ``kill -9`` the whole
   server process group mid-sweep (server, runner, task workers — the
   power-cord scenario);
2. restart the service on the same cache directory: the durable
   request journal replays the interrupted request detached, finishing
   the sweep into the content-addressed store;
3. resubmit the identical request: it must answer **entirely from
   cache** (zero misses, every point a hit) with a payload
   byte-identical to an untouched control service.

Run from the repo root (``make serve-chaos``)::

    PYTHONPATH=src python examples/serve_chaos.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")

#: Small but multi-point: enough sweep time to land a kill mid-flight.
SWEEP_NS = [4096, 32768]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def start_server(cache: str):
    """Launch a service subprocess in its own process group; returns
    ``(proc, port)`` once it reports its bound endpoint."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--cache",
            cache,
            "--port",
            "0",
            "--jobs",
            "1",
        ],
        stdout=subprocess.PIPE,
        env=_env(),
        start_new_session=True,  # killpg reaches runners + task workers
        text=True,
    )
    line = proc.stdout.readline()
    banner = json.loads(line)
    port = int(banner["serving"].rsplit(":", 1)[1])
    return proc, port


def main() -> int:
    sys.path.insert(0, SRC)
    from repro.service import SweepRequest, client

    req = SweepRequest(experiment="fig1", fast=True, seed=0, ns=SWEEP_NS)
    work = tempfile.mkdtemp(prefix="qsm-chaos-")
    cache = os.path.join(work, "cache")
    control_cache = os.path.join(work, "control")
    procs = []
    try:
        # -- 1. submit, then pull the power cord mid-sweep ------------
        proc, port = start_server(cache)
        procs.append(proc)
        assert client.wait_ready(port=port, timeout=60.0), "server never came up"
        killed = False
        try:
            for event in client.submit(req, port=port, timeout=60.0):
                if event.get("event") == "point" and not killed:
                    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                    killed = True
                    print("[killed -9 the server process group mid-sweep]")
        except (OSError, client.ServiceError, ValueError):
            pass  # the stream dying with the server is the point
        assert killed, "sweep finished before the kill landed; nothing tested"
        proc.wait(timeout=30.0)

        # -- 2. restart: the journal replays the interrupted sweep ----
        proc2, port2 = start_server(cache)
        procs.append(proc2)
        assert client.wait_ready(port=port2, timeout=60.0), "restart never came up"
        deadline = time.monotonic() + 300.0
        while True:
            st = client.stats(port=port2)
            if st["requests_served"] >= 1:
                break
            assert time.monotonic() < deadline, "journal replay never finished"
            time.sleep(0.25)
        assert st["requests_replayed"] == 1, st
        print(f"[replayed {st['requests_replayed']} interrupted request from the journal]")

        # -- 3. idempotent resubmit: all hits, zero recompute ---------
        points = []
        result = None
        for event in client.submit(req, port=port2, timeout=60.0, retries=3):
            if event.get("event") == "point":
                points.append(event)
            elif event.get("event") == "result":
                result = event
        assert result is not None, "resubmit produced no result"
        assert result["cache"]["misses"] == 0, result["cache"]
        assert points and all(p["status"] == "hit" for p in points), points
        print(f"[resubmit: {len(points)} point(s), all hits, zero misses]")

        # -- byte-identity vs an untouched control service ------------
        proc3, port3 = start_server(control_cache)
        procs.append(proc3)
        assert client.wait_ready(port=port3, timeout=60.0)
        control = None
        for event in client.submit(req, port=port3, timeout=60.0):
            if event.get("event") == "result":
                control = event
        blob = json.dumps(result["payload"], sort_keys=True)
        control_blob = json.dumps(control["payload"], sort_keys=True)
        assert blob == control_blob, "crash-replayed payload diverged from control"
        print("[payload byte-identical to the untouched control service]")

        for port_ in (port2, port3):
            try:
                client.shutdown(port=port_)
            except (OSError, client.ServiceError):
                pass
        print("== OK: kill -9 -> restart -> replay -> idempotent resubmit ==")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                try:
                    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass
                proc.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
