#!/usr/bin/env bash
# Sweep-as-a-service demo: start the batch front-end, submit the same
# fig1 sweep twice, and prove the second submission executed zero
# simulator points and returned a byte-identical payload.
#
# Usage: examples/serve_demo.sh [PORT]   (run from the repo root)
set -euo pipefail

PORT="${1:-18642}"
WORK="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

export PYTHONPATH=src

python -m repro.experiments.cli serve \
    --cache "$WORK/cache" --port "$PORT" --jobs 2 &
SERVER_PID=$!

python - "$PORT" <<'PYEOF'
import sys
from repro.service import client

assert client.wait_ready(port=int(sys.argv[1]), timeout=30.0), "server never came up"
PYEOF

echo "== first submission (cold cache) =="
python -m repro.experiments.cli submit fig1 --fast \
    --port "$PORT" --json "$WORK/first.json"

echo "== second submission (must be free) =="
python -m repro.experiments.cli submit fig1 --fast \
    --port "$PORT" --json "$WORK/second.json" | tee "$WORK/second.log"

cmp "$WORK/first.json" "$WORK/second.json"
grep -q "0 miss(es)" "$WORK/second.log"
echo "== OK: second run was all cache hits and byte-identical =="

python - "$PORT" <<'PYEOF'
import sys
from repro.service import client

print(client.stats(port=int(sys.argv[1])))
client.shutdown(port=int(sys.argv[1]))
PYEOF
wait "$SERVER_PID" 2>/dev/null || true
