#!/usr/bin/env python
"""Model comparison: one measured program under QSM, s-QSM, BSP and LogP.

Runs list ranking on the simulated machine, converts its measured
per-phase operation counts into :class:`PhaseWork` records, and prices
the same execution under all four cost models of §2.1 — the number of
parameters each model asks you to know is the real difference.

Run:  python examples/model_comparison.py
"""

from repro.algorithms import make_random_list, run_list_ranking
from repro.core import (
    BSPModel,
    BSPParams,
    LogPModel,
    LogPParams,
    PhaseWork,
    QSMModel,
    QSMParams,
    SQSMModel,
    SQSMParams,
)
from repro.qsmlib import QSMMachine, RunConfig
from repro.util.tables import format_table


def main() -> None:
    config = RunConfig(seed=5, check_semantics=False, track_kappa=True)
    qm = QSMMachine(config)
    costs = qm.cost_model()
    p = qm.p

    n = 40000
    out = run_list_ranking(make_random_list(n, seed=5), config)
    phases = [PhaseWork.from_phase_record(ph) for ph in out.run.phases]

    # Effective per-word gap of this machine (software included); L from
    # the measured barrier; LogP's o/l from the hardware settings.
    g_word = 0.5 * (costs.put_word_cycles + costs.get_word_cycles)
    L = costs.barrier_cycles(p)
    net = config.machine.network

    models = {
        "QSM   (p, g)": QSMModel(QSMParams(p=p, g=g_word)),
        "s-QSM (p, g)": SQSMModel(SQSMParams(p=p, g=g_word)),
        "BSP   (p, g, L)": BSPModel(BSPParams(p=p, g=g_word, L=L)),
        "LogP  (p, l, o, g)": LogPModel(
            LogPParams(p=p, l=net.latency_cycles, o=net.overhead_cycles, g=g_word)
        ),
    }
    # LogP prices messages; approximate one message per peer per phase.
    logp_phases = [
        PhaseWork(w.m_op, w.m_rw, w.kappa, messages=(p - 1) if w.m_rw else 0) for w in phases
    ]

    measured = out.run.total_cycles
    rows = []
    for name, model in models.items():
        work = logp_phases if name.startswith("LogP") else phases
        cost = model.program_cost(work)
        rows.append([name, round(cost), f"{cost / measured:.2f}"])
    rows.append(["measured (DES)", round(measured), "1.00"])

    print(format_table(
        ["model (parameters)", "predicted cycles", "vs measured"],
        rows,
        title=f"List ranking, n={n}, p={p}: one run priced under four models",
    ))
    print(f"\nphases: {out.run.n_phases}; max kappa observed: "
          f"{max(ph.kappa for ph in out.run.phases)}")
    print("\nReading: the two-parameter QSM prices the program nearly as")
    print("faithfully as the four-parameter LogP for this bulk-synchronous")
    print("code — which is the paper's argument for the simpler contract.")


if __name__ == "__main__":
    main()
