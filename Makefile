# Convenience targets; everything assumes the in-repo layout
# (PYTHONPATH=src, no installation required).

PYTHON ?= python

.PHONY: test bench report

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q

# Re-run the simulator performance benchmark and fail if the fast-path
# events/sec regressed >20% vs the committed benchmarks/BENCH_perf.json.
bench:
	benchmarks/run_perf.sh

report:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli report REPORT.md --fast
