# Convenience targets; everything assumes the in-repo layout
# (PYTHONPATH=src, no installation required).

PYTHON ?= python

.PHONY: test check check-phases bench bench-smoke bench-obs bench-check bench-faults bench-topology report trace-demo serve-demo serve-chaos

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q

# Static determinism lint (repo must be clean), static phase-safety
# proofs, and a sanitizer-armed smoke experiment; see docs/CHECKING.md.
check: check-phases
	PYTHONPATH=src $(PYTHON) -m repro.check.lint src/repro
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli run fig1 --fast --sanitize=error

# Symbolic phase analyzer: every algorithm must prove QSM-phase-safe
# and its symbolic cost profile must match repro.predict's closed forms.
check-phases:
	PYTHONPATH=src $(PYTHON) -m repro.check.phases src/repro/algorithms

# Re-run the simulator performance benchmark (all three sync paths)
# and fail if the fastest path's events/sec regressed >20% vs the
# committed benchmarks/BENCH_perf.json.
bench:
	benchmarks/run_perf.sh

# Reduced-grid benchmark for CI: one pass over a single sweep point per
# sync path, failing on any cross-path timing mismatch.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf.py --smoke

# Observability overhead gate: a run with collection disabled (the
# default) must stay within 3% of the pre-instrumentation baseline.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_obs.py \
		--check benchmarks/BENCH_perf.json --tolerance 0.03

# Sanitizer overhead gate: a run with the sanitizer disarmed (the
# default) must stay within 3% of the pre-instrumentation baseline.
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_check.py \
		--check benchmarks/BENCH_perf.json --tolerance 0.03

# Fault-injection overhead gate: a run with faults disarmed (the
# default) must stay within 3% of the pre-fault-injection baseline;
# also asserts the armed path perturbs timings deterministically.
bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py \
		--check benchmarks/BENCH_perf.json --tolerance 0.03

# Topology smoke: the flat machine must match the pre-topology golden
# timings exactly, and a small cluster grid must report bit-identical
# timings under the fast and epoch sync paths.
bench-topology:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_topology.py

report:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli report REPORT.md --fast

# Sweep-as-a-service round trip: start the server, submit the same
# fig1 sweep twice, assert the second run is all cache hits and
# byte-identical; see docs/SERVICE.md.
serve-demo:
	bash examples/serve_demo.sh

# Crash-safety chaos smoke: kill -9 the server process group mid-sweep,
# restart on the same cache, require journal replay plus an idempotent
# all-hits resubmit that is byte-identical to an untouched control run.
serve-chaos:
	PYTHONPATH=src $(PYTHON) examples/serve_chaos.py

# Produce a Perfetto-loadable trace + metrics dump from the fig1 sweep
# (open trace_demo.json at https://ui.perfetto.dev).
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli run fig1 --fast \
		--trace trace_demo.json --metrics metrics_demo.jsonl
